package conformance

import (
	"fmt"
	"sync/atomic"

	"perfscale/internal/core"
	"perfscale/internal/machine"
	"perfscale/internal/matmul"
	"perfscale/internal/matrix"
	"perfscale/internal/nbody"
	"perfscale/internal/sim"
)

// blindObserver is a counting-only event-bus subscriber: attaching it must
// not change a single counter or clock (observation is free in virtual
// time). Callbacks fire concurrently across ranks, so the count is atomic.
type blindObserver struct{ events atomic.Int64 }

func (o *blindObserver) OnCompute(int, sim.Segment)   { o.events.Add(1) }
func (o *blindObserver) OnSend(int, sim.Segment)      { o.events.Add(1) }
func (o *blindObserver) OnRecv(int, sim.Segment)      { o.events.Add(1) }
func (o *blindObserver) OnPhase(int, string, float64) { o.events.Add(1) }
func (o *blindObserver) OnFault(sim.FaultEvent)       { o.events.Add(1) }
func (o *blindObserver) OnCrash(sim.CrashEvent)       { o.events.Add(1) }
func (o *blindObserver) OnDeadlock(sim.DeadlockEvent) { o.events.Add(1) }
func (o *blindObserver) OnTimer(sim.TimerEvent)       { o.events.Add(1) }

// checkSimMetamorphic runs the simulator-level metamorphic family:
//
//   - wiring identity: dense and sparse wiring produce bit-identical
//     per-rank stats and numerics (the wiring mode is a host-side choice,
//     not part of the simulated machine);
//   - observer identity: an attached observer never perturbs the run;
//   - simulated perfect strong scaling: the 2.5D matmul and the replicated
//     n-body at c > 1 run against their c = 1 baselines with p multiplied
//     by c and per-rank memory unchanged — T must drop by ≈c and the
//     priced E must stay ≈constant, the paper's theorem measured on the
//     live runtime rather than evaluated in closed form. This family
//     always runs (and prices) on the sim-default machine: it verifies
//     the clock semantics in the compute-dominated regime the theorem
//     addresses, which latency-heavy machines like jaketown never reach
//     at sweepable sizes; pricing conformance under arbitrary machines is
//     the differential family's job.
func checkSimMetamorphic(ck *checker, cfg Config) error {
	if err := checkWiringIdentity(ck, cfg); err != nil {
		return err
	}
	if err := checkObserverIdentity(ck, cfg); err != nil {
		return err
	}
	if err := checkSimStrongScalingMatMul(ck, cfg); err != nil {
		return err
	}
	return checkSimStrongScalingNBody(ck, cfg)
}

// statsIdentical compares two runs rank by rank, bit for bit.
func statsIdentical(a, b *sim.Result) (int, bool) {
	if len(a.PerRank) != len(b.PerRank) {
		return -1, false
	}
	for id := range a.PerRank {
		if a.PerRank[id] != b.PerRank[id] {
			return id, false
		}
	}
	return -1, true
}

func checkWiringIdentity(ck *checker, cfg Config) error {
	const alg = "matmul-2.5d"
	pt := Point{N: 48, Q: 4, C: 2, P: 32}
	a := matrix.Random(pt.N, pt.N, 21)
	b := matrix.Random(pt.N, pt.N, 22)
	run := func(w sim.Wiring) (*matmul.RunResult, error) {
		cost := cfg.cost()
		cost.Wiring = w
		return matmul.TwoPointFiveD(cost, pt.Q, pt.C, a, b)
	}
	sparse, err := run(sim.WiringSparse)
	if err != nil {
		return fmt.Errorf("conformance: wiring identity (sparse): %w", err)
	}
	dense, err := run(sim.WiringDense)
	if err != nil {
		return fmt.Errorf("conformance: wiring identity (dense): %w", err)
	}
	rank, same := statsIdentical(sparse.Sim, dense.Sim)
	ck.checkTrue("metamorphic/wiring-identity", alg, pt, "",
		same, float64(rank), -1,
		"dense and sparse wiring diverged in per-rank stats (first differing rank in Got)")
	ck.checkTrue("metamorphic/wiring-identity-numerics", alg, pt, "",
		sparse.C.MaxAbsDiff(dense.C) == 0,
		sparse.C.MaxAbsDiff(dense.C), 0,
		"dense and sparse wiring produced different numerical output")
	return nil
}

func checkObserverIdentity(ck *checker, cfg Config) error {
	const alg = "matmul-2.5d"
	pt := Point{N: 48, Q: 4, C: 2, P: 32}
	a := matrix.Random(pt.N, pt.N, 23)
	b := matrix.Random(pt.N, pt.N, 24)
	blindCost := cfg.cost()
	blind, err := matmul.TwoPointFiveD(blindCost, pt.Q, pt.C, a, b)
	if err != nil {
		return fmt.Errorf("conformance: observer identity (blind): %w", err)
	}
	obs := &blindObserver{}
	obsCost := cfg.cost()
	obsCost.Observers = []sim.Observer{obs}
	observed, err := matmul.TwoPointFiveD(obsCost, pt.Q, pt.C, a, b)
	if err != nil {
		return fmt.Errorf("conformance: observer identity (observed): %w", err)
	}
	rank, same := statsIdentical(blind.Sim, observed.Sim)
	ck.checkTrue("metamorphic/observer-identity", alg, pt, "",
		same, float64(rank), -1,
		"attaching an observer changed per-rank stats (first differing rank in Got)")
	ck.checkTrue("metamorphic/observer-saw-events", alg, pt, "",
		obs.events.Load() > 0, float64(obs.events.Load()), 1,
		"the observer saw no events — the identity check observed nothing")
	return nil
}

// simScalingBands are the stated tolerances for the measured strong-scaling
// transform: T(c·p)·c/T(p) stays near 1 (the latency term grows as log c,
// so speedup is slightly sublinear) and E(c·p)/E(p) stays near 1 (the
// replicated footprint adds memory energy but W·p is flat). The points are
// sized so per-step compute dominates latency — the regime the theorem
// addresses; at toy sizes replication overhead swamps the 1/c compute drop.
var (
	simScalingTimeBand   = Band{0.9, 1.8}
	simScalingEnergyBand = Band{0.8, 1.6}
)

// scalingCost derives the sim-default cost for the live strong-scaling
// checks (see checkSimMetamorphic), still honouring the negative-testing
// mutation so a broken clock shows up here too.
func scalingCost(cfg Config) (machine.Params, sim.Cost) {
	def := Config{Machine: machine.SimDefault(), MutateCost: cfg.MutateCost}
	return def.Machine, def.cost()
}

func checkSimStrongScalingMatMul(ck *checker, cfg Config) error {
	const alg = "matmul-2.5d"
	const n, q = 192, 4 // big enough that comm overhead (∝n²) amortizes vs compute (∝n³)
	m, cost := scalingCost(cfg)
	a := matrix.Random(n, n, 25)
	b := matrix.Random(n, n, 26)
	base, err := matmul.TwoPointFiveD(cost, q, 1, a, b)
	if err != nil {
		return fmt.Errorf("conformance: sim strong scaling (c=1): %w", err)
	}
	baseT := base.Sim.Time()
	baseE := core.PriceSim(m, base.Sim).Total()
	for _, c := range []int{2, 4} {
		pt := Point{N: n, Q: q, C: c, P: q * q * c}
		scaled, err := matmul.TwoPointFiveD(cost, q, c, a, b)
		if err != nil {
			return fmt.Errorf("conformance: sim strong scaling (c=%d): %w", c, err)
		}
		t := scaled.Sim.Time()
		e := core.PriceSim(m, scaled.Sim).Total()
		ck.checkBand("metamorphic/sim-strong-scaling-time", alg, pt, "T",
			t*float64(c), baseT, simScalingTimeBand,
			fmt.Sprintf("measured T(c=%d)·%d vs T(c=1): perfect strong scaling on the live runtime", c, c))
		ck.checkBand("metamorphic/sim-strong-scaling-energy", alg, pt, "E",
			e, baseE, simScalingEnergyBand,
			fmt.Sprintf("measured E(c=%d) vs E(c=1): no additional energy on the live runtime", c))
	}
	return nil
}

func checkSimStrongScalingNBody(ck *checker, cfg Config) error {
	const alg = "nbody"
	const n, k = 256, 8 // ring size fixed: per-rank block and M stay constant
	m, cost := scalingCost(cfg)
	bodies := nbody.RandomBodies(n, 27)
	base, err := nbody.Replicated(cost, k, 1, bodies)
	if err != nil {
		return fmt.Errorf("conformance: n-body strong scaling (c=1): %w", err)
	}
	baseT := base.Sim.Time()
	baseE := core.PriceSim(m, base.Sim).Total()
	for _, c := range []int{2, 4} {
		p := k * c
		if k%c != 0 { // each team must cover an integer number of shift steps
			continue
		}
		pt := Point{N: n, P: p, C: c}
		scaled, err := nbody.Replicated(cost, p, c, bodies)
		if err != nil {
			return fmt.Errorf("conformance: n-body strong scaling (c=%d): %w", c, err)
		}
		t := scaled.Sim.Time()
		e := core.PriceSim(m, scaled.Sim).Total()
		ck.checkBand("metamorphic/sim-strong-scaling-time", alg, pt, "T",
			t*float64(c), baseT, simScalingTimeBand,
			fmt.Sprintf("measured n-body T(c=%d)·%d vs T(c=1)", c, c))
		ck.checkBand("metamorphic/sim-strong-scaling-energy", alg, pt, "E",
			e, baseE, simScalingEnergyBand,
			fmt.Sprintf("measured n-body E(c=%d) vs E(c=1)", c))
	}
	return nil
}
