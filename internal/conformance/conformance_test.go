package conformance

import (
	"context"
	"errors"
	"os"
	"strings"
	"testing"
	"time"

	"perfscale/internal/machine"
	"perfscale/internal/sim"
)

// TestSweepQuick is the tier-1 gate: the quick sweep over every algorithm
// and property family must pass with zero violations.
func TestSweepQuick(t *testing.T) {
	rep, err := Sweep(Config{Level: Quick})
	if err != nil {
		t.Fatalf("sweep failed to run: %v", err)
	}
	if rep.Points == 0 || rep.Checks == 0 {
		t.Fatalf("sweep ran nothing: %d points, %d checks", rep.Points, rep.Checks)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	t.Logf("quick sweep: %d points, %d checks, %d violations", rep.Points, rep.Checks, len(rep.Violations))
}

// TestSweepFull widens the grids; skipped under -short so the quick CI
// path stays fast. Set CONF_VERBOSE=1 to dump every band ratio — the
// input to the calibration procedure in docs/CONFORMANCE.md.
func TestSweepFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep skipped in -short mode")
	}
	cfg := Config{Level: Full}
	if os.Getenv("CONF_VERBOSE") != "" {
		cfg.Verbose = os.Stderr
	}
	rep, err := Sweep(cfg)
	if err != nil {
		t.Fatalf("sweep failed to run: %v", err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	t.Logf("full sweep: %d points, %d checks, %d violations", rep.Points, rep.Checks, len(rep.Violations))
}

// TestSweepJaketown prices the sweep on the paper's case-study machine:
// the properties are machine-independent and must hold under realistic
// parameters too, not just the round-numbered sim default.
func TestSweepJaketown(t *testing.T) {
	if testing.Short() {
		t.Skip("extra machine sweep skipped in -short mode")
	}
	m, err := machine.ByName("jaketown")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Machine: m, Level: Full}
	if os.Getenv("CONF_VERBOSE") != "" {
		cfg.Verbose = os.Stderr
	}
	rep, err := Sweep(cfg)
	if err != nil {
		t.Fatalf("sweep failed to run: %v", err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
}

// TestAlgorithmFilter restricts the sweep to one algorithm.
func TestAlgorithmFilter(t *testing.T) {
	rep, err := Sweep(Config{Level: Quick, Algorithms: []string{"fft"}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Points != len(fftPoints(Quick)) {
		t.Fatalf("filtered sweep ran %d points, want %d", rep.Points, len(fftPoints(Quick)))
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
}

// TestAlgorithmNamesSorted pins the registry listing.
func TestAlgorithmNamesSorted(t *testing.T) {
	names := AlgorithmNames()
	if len(names) != len(algorithms) {
		t.Fatalf("AlgorithmNames returned %d names, registry has %d", len(names), len(algorithms))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

// --- Negative tests: the harness must catch a deliberately broken model ---

// negativeSweep runs the quick differential sweep on one algorithm with a
// cost mutation and returns the violated property names.
func negativeSweep(t *testing.T, mutate func(*sim.Cost)) map[string]int {
	t.Helper()
	rep, err := Sweep(Config{
		Level:      Quick,
		Algorithms: []string{"matmul-2.5d"},
		MutateCost: mutate,
	})
	if err != nil {
		t.Fatalf("negative sweep failed to run: %v", err)
	}
	props := map[string]int{}
	for _, v := range rep.Violations {
		props[v.Property]++
	}
	return props
}

// TestCatchesMispricedRecv injects the canonical model error of the
// acceptance criteria: the simulator silently switches to ChargeReceiver
// semantics (receives are priced αt+βt·k) while the model still assumes
// receivers only wait. The differential family must catch it.
func TestCatchesMispricedRecv(t *testing.T) {
	props := negativeSweep(t, func(c *sim.Cost) { c.ChargeReceiver = true })
	if props["differential/recv-pricing"] == 0 {
		t.Fatalf("mispriced Recv not caught; violations: %v", props)
	}
}

// TestCatchesInflatedBeta perturbs the simulated per-word time by 1%
// relative to the machine the expectations price with: the send-pricing
// identity must flag every communicating rank.
func TestCatchesInflatedBeta(t *testing.T) {
	props := negativeSweep(t, func(c *sim.Cost) { c.BetaT *= 1.01 })
	if props["differential/send-pricing"] == 0 {
		t.Fatalf("inflated βt not caught; violations: %v", props)
	}
}

// TestCatchesWrongMessageSizing shrinks the network's maximum message so
// ⌈k/m⌉ explodes: the latency-dependent bands must move.
func TestCatchesWrongMessageSizing(t *testing.T) {
	props := negativeSweep(t, func(c *sim.Cost) { c.MaxMsgWords = 7 })
	if len(props) == 0 {
		t.Fatal("fragmented message sizing produced no violations")
	}
}

// TestCatchesUnderCountedWords is the bounds family's negative test: a
// simulator that under-records communication (here: every rank's word
// counters scaled to a quarter of what was moved) must fall below the
// exact-constant lower-bound floor and be caught — on square 2.5D points
// and on rectangular SUMMA shapes alike. The clean runs of the same
// algorithms (TestSweepQuick and the green half below) pass the identical
// checks, so this stays red-then-green.
func TestCatchesUnderCountedWords(t *testing.T) {
	algs := []string{"matmul-2.5d", "matmul-summa-rect"}
	for _, alg := range algs {
		t.Run(alg, func(t *testing.T) {
			rep, err := Sweep(Config{
				Level:      Quick,
				Algorithms: []string{alg},
				MutateResult: func(res *sim.Result) {
					for i := range res.PerRank {
						res.PerRank[i].WordsSent *= 0.25
						res.PerRank[i].WordsRecv *= 0.25
					}
				},
			})
			if err != nil {
				t.Fatalf("negative sweep failed to run: %v", err)
			}
			floors := 0
			for _, v := range rep.Violations {
				if v.Property == "bounds/floor" {
					floors++
				}
			}
			if floors == 0 {
				t.Fatalf("under-counted words not caught by bounds/floor; violations: %v", rep.Violations)
			}
			// Green half: the same sweep without the mutation is clean.
			clean, err := Sweep(Config{Level: Quick, Algorithms: []string{alg}})
			if err != nil {
				t.Fatalf("clean sweep failed to run: %v", err)
			}
			for _, v := range clean.Violations {
				t.Errorf("clean sweep violation: %s", v)
			}
		})
	}
}

// TestBoundsFamilyCoversAllAlgorithms asserts every registry entry carries
// a non-empty composite bound set at its quick points — the bounds family
// must be load-bearing for all seven original algorithms plus the
// rectangular SUMMA entry, not just matmul.
func TestBoundsFamilyCoversAllAlgorithms(t *testing.T) {
	cfg := Config{Level: Quick}
	cfg.Machine = machine.SimDefault()
	for _, alg := range algorithms {
		pt := alg.points(Quick)[0]
		run, err := alg.run(cfg.cost(), cfg.Machine, pt)
		if err != nil {
			t.Fatalf("%s %s: %v", alg.name, pt, err)
		}
		if len(run.lower.All) == 0 {
			t.Errorf("%s: empty composite bound set", alg.name)
			continue
		}
		moved := maxWordsMoved(run.res)
		max := run.lower.Max()
		if moved < max.Words {
			t.Errorf("%s %s: moved %g below its own bound %g (%s)", alg.name, pt, moved, max.Words, max.Name)
		}
		t.Logf("%-18s %-28s moved %10.4g  bound %10.4g (%s)", alg.name, pt, moved, max.Words, max.Name)
	}
}

// TestViolationString pins the rendered form used by cmd/conformance.
func TestViolationString(t *testing.T) {
	v := Violation{
		Property: "differential/model-band", Algorithm: "fft",
		Point: Point{N: 512, P: 8, Tree: true}.String(), Quantity: "W",
		Got: 2, Want: 1, Detail: "ratio out of band",
	}
	s := v.String()
	for _, want := range []string{"differential/model-band", "fft", "n=512 p=8 tree", "W", "ratio out of band"} {
		if !strings.Contains(s, want) {
			t.Errorf("violation string %q missing %q", s, want)
		}
	}
}

// TestSweepInterrupted verifies the cancellation contract: a cancelled
// Config.Context aborts the sweep, the error unwraps to the context cause,
// and the returned report is marked partial rather than discarded.
func TestSweepInterrupted(t *testing.T) {
	t.Run("pre-cancelled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		rep, err := Sweep(Config{Level: Quick, Context: ctx})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("sweep error = %v, want context.Canceled", err)
		}
		if rep == nil || !rep.Interrupted {
			t.Fatalf("report = %+v, want non-nil with Interrupted", rep)
		}
	})
	t.Run("deadline-mid-sweep", func(t *testing.T) {
		// Tight enough that the quick sweep cannot finish, long enough
		// that the closed-form pass and at least part of the simulator
		// work starts; the abort must come back as DeadlineExceeded, not
		// as a wedged run or a harness error.
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		start := time.Now()
		rep, err := Sweep(Config{Level: Quick, Context: ctx})
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("sweep error = %v, want context.DeadlineExceeded", err)
		}
		if !rep.Interrupted {
			t.Error("report not marked Interrupted")
		}
		if wall := time.Since(start); wall > 10*time.Second {
			t.Errorf("interrupted sweep took %v, want prompt abort", wall)
		}
		t.Logf("partial report: %d points, %d checks", rep.Points, rep.Checks)
	})
}
