package conformance

import (
	"fmt"
	"math"

	"perfscale/internal/bounds"
	"perfscale/internal/sim"
)

// The bounds family verifies the exact-constant communication lower bounds
// of internal/bounds (memory-dependent ITT, memory-independent Ballard et
// al., tight rectangular Al Daas et al.) two ways:
//
//   - bounds/floor: every simulated run of every algorithm must move at
//     least as many words as the maximum of all applicable lower bounds —
//     an implementation (or a counter) below the floor cannot have moved
//     the data the computation provably needs. "Moved" is the busiest
//     rank's sent + received words: the bounds count operand accesses
//     beyond what a rank owns, and an access crosses the network in one
//     direction or the other.
//   - bounds/plateau, bounds/regime-*: closed-form consistency of the
//     plateau attribution machinery — the exact perfect-scaling endpoint,
//     the binding-bound switch there, and the continuity and ordering of
//     the rectangular aspect-ratio regimes.

// maxWordsMoved returns the maximum over ranks of WordsSent + WordsRecv —
// the quantity the composite lower bounds constrain. (MaxStats takes
// per-field maxima over different ranks, which is not a words-moved figure
// for any single rank.)
func maxWordsMoved(res *sim.Result) float64 {
	var moved float64
	for _, s := range res.PerRank {
		moved = math.Max(moved, s.WordsSent+s.WordsRecv)
	}
	return moved
}

// checkBoundsFloor asserts one finished run sits above its composite lower
// bound and reports the binding member on violation — the attribution that
// names which theorem the run broke.
func checkBoundsFloor(ck *checker, alg string, pt Point, run *algRun) {
	if len(run.lower.All) == 0 {
		return
	}
	moved := maxWordsMoved(run.res)
	max := run.lower.Max()
	ck.checkTrue("bounds/floor", alg, pt, "W",
		moved >= max.Words*(1-1e-9),
		moved, max.Words,
		fmt.Sprintf("busiest-rank words moved fell below the binding %s lower bound (%s)",
			max.Name, max.Source))
	// Each member individually, so a violation report names every broken
	// bound, not only the largest.
	for _, b := range run.lower.All {
		if b.Words <= 0 || b.Name == max.Name {
			continue
		}
		ck.checkTrue("bounds/floor", alg, pt, "W",
			moved >= b.Words*(1-1e-9),
			moved, b.Words,
			fmt.Sprintf("busiest-rank words moved fell below the %s lower bound (%s)", b.Name, b.Source))
	}
}

// checkBoundsClosedForm verifies the analytic structure of the lower-bound
// stack itself, independent of any simulation.
func checkBoundsClosedForm(ck *checker) {
	const alg = "closed-form"

	// Plateau attribution: at PEnd the memory-dependent attainable curve
	// meets the memory-independent floor exactly, and BindingAt switches
	// from the dependent to the independent bound name there.
	for _, n := range []float64{1 << 12, 1 << 16} {
		for _, mem := range []float64{1 << 16, 1 << 22} {
			pt := Point{N: int(n), P: 0}
			pl := bounds.ClassicalPlateau(n, mem)
			dep := n * n * n / (pl.PEnd * math.Sqrt(mem))
			indep := n * n / math.Pow(pl.PEnd, 2.0/3.0)
			ck.checkTrue("bounds/plateau", alg, pt, "W",
				relClose(dep, indep, 1e-9),
				dep, indep,
				"memory-dependent and memory-independent curves do not meet at PEnd = n³/M^(3/2)")
			ck.checkTrue("bounds/plateau", alg, pt, "",
				pl.BindingAt(pl.PEnd/2) == pl.DependentBound &&
					pl.BindingAt(pl.PEnd*2) == pl.IndependentBound,
				0, 0,
				"BindingAt does not switch bounds at the plateau end")

			// Strassen-like algorithms leave the plateau earlier whenever
			// replication headroom exists (M < n²).
			fast := bounds.FastPlateau(n, mem, bounds.OmegaStrassen)
			ck.checkTrue("bounds/plateau", alg, pt, "",
				mem >= n*n || fast.PEnd < pl.PEnd,
				fast.PEnd, pl.PEnd,
				"Strassen plateau does not end before the classical one")
		}
	}

	// Rectangular regimes: boundaries ordered, access bound continuous at
	// both crossovers, square shapes always three-large and equal to the
	// classical memory-independent bound.
	shapes := [][3]float64{
		{4096, 64, 64},  // tall-skinny
		{4096, 4, 4096}, // outer-product-like
		{256, 1024, 64}, // mixed
		{512, 512, 512}, // square
		{65536, 256, 256},
	}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		pt := Point{MDim: int(m), KDim: int(k), N: int(n)}
		p1, p2 := bounds.RectRegimeBoundaries(m, k, n)
		ck.checkTrue("bounds/regime-order", alg, pt, "",
			p1 <= p2*(1+1e-12),
			p1, p2,
			"one-large→two-large boundary above two-large→three-large boundary")
		for _, pb := range []float64{p1, p2} {
			if pb <= 1 {
				continue
			}
			lo, _ := bounds.RectAccesses(m, k, n, pb*(1-1e-9))
			hi, _ := bounds.RectAccesses(m, k, n, pb*(1+1e-9))
			ck.checkTrue("bounds/regime-continuity", alg, pt, "W",
				relClose(lo, hi, 1e-6),
				lo, hi,
				fmt.Sprintf("rectangular access bound jumps at the regime boundary p=%g", pb))
		}
		// Monotone non-increasing in p across all regimes.
		prev := math.Inf(1)
		monotone := true
		for p := 1.0; p <= 1<<20; p *= 4 {
			acc, _ := bounds.RectAccesses(m, k, n, p)
			if acc > prev*(1+1e-12) {
				monotone = false
			}
			prev = acc
		}
		ck.checkTrue("bounds/regime-monotone", alg, pt, "W",
			monotone, 0, 0,
			"rectangular access bound not monotone non-increasing in p")
	}
	for _, p := range []float64{1, 8, 512, 1 << 15} {
		n := 512.0
		pt := Point{N: int(n), P: int(p)}
		w, regime := bounds.RectMemIndepWords(n, n, n, p)
		ck.checkTrue("bounds/square-consistency", alg, pt, "W",
			regime == bounds.ThreeLargeDims && relClose(w, bounds.ClassicalMemIndepWords(n, p), 1e-9),
			w, bounds.ClassicalMemIndepWords(n, p),
			"square rectangular bound disagrees with the classical memory-independent bound")
	}
}
