package conformance

import (
	"fmt"
	"math"
	"math/bits"

	"perfscale/internal/bounds"
	"perfscale/internal/core"
	"perfscale/internal/fft"
	"perfscale/internal/lu"
	"perfscale/internal/machine"
	"perfscale/internal/matmul"
	"perfscale/internal/matrix"
	"perfscale/internal/nbody"
	"perfscale/internal/sim"
	"perfscale/internal/strassen"
)

// expectation is one differential comparison: a measured quantity against
// its analytic model with a stated tolerance band on the ratio.
type expectation struct {
	quantity string
	got      float64
	model    float64
	band     Band
	detail   string
}

// algRun is the outcome of executing one algorithm at one point: the raw
// simulation result plus the analytic expectations the differential family
// checks against it.
type algRun struct {
	res *sim.Result
	// expects lists the model comparisons for this point.
	expects []expectation
	// lower is the composite of exact-constant communication lower bounds
	// applicable to this run; the bounds family asserts the busiest rank's
	// words moved (sent + received) never fall below its maximum. An empty
	// set skips the floor check.
	lower bounds.BoundSet
	// faulted marks runs executed under a fault plan; the exact pricing
	// identities assume clean uniform links and are skipped for them.
	faulted bool
}

// algorithmDef couples a sweep grid with an executor.
type algorithmDef struct {
	name   string
	points func(l Level) []Point
	run    func(cost sim.Cost, m machine.Params, pt Point) (*algRun, error)
}

// algorithms is the registry the sweep iterates. The ratio bands pinned
// below are golden constants measured from the implementations (see
// docs/CONFORMANCE.md for the calibration procedure); they are deliberately
// tighter than a factor of two so that a lost message, a double-charged
// word or a mispriced operation moves the ratio out of its band.
var algorithms = []algorithmDef{
	{name: "matmul-2.5d", points: matmul25DPoints, run: runMatMul25D},
	{name: "matmul-3d", points: matmul3DPoints, run: runMatMul3D},
	{name: "matmul-summa-2.5d", points: matmul25DPoints, run: runMatMulSUMMA},
	{name: "matmul-summa-rect", points: matmulRectPoints, run: runMatMulRect},
	{name: "caps", points: capsPoints, run: runCAPS},
	{name: "lu-stacked", points: luPoints, run: runLU},
	{name: "nbody", points: nbodyPoints, run: runNBody},
	{name: "fft", points: fftPoints, run: runFFT},
}

// --- 2.5D / SUMMA matmul ----------------------------------------------------

func matmul25DPoints(l Level) []Point {
	pts := []Point{
		{N: 48, Q: 4, C: 1, P: 16},
		{N: 48, Q: 4, C: 2, P: 32},
		{N: 48, Q: 4, C: 4, P: 64},
	}
	if l == Full {
		pts = append(pts,
			Point{N: 96, Q: 8, C: 1, P: 64},
			Point{N: 96, Q: 8, C: 2, P: 128},
			Point{N: 96, Q: 8, C: 4, P: 256},
			Point{N: 96, Q: 8, C: 8, P: 512},
		)
	}
	return pts
}

// matmulExpectations builds the shared expectation set for the classical
// matmul variants: F against the exact multiply-add count, M against the
// exact tracked footprint, W/S/T/E against the Eq. 7/8 shapes with
// per-variant constant bands.
func matmulExpectations(m machine.Params, pt Point, res *sim.Result, wBand, sBand, tBand, eBand Band) []expectation {
	n, p, c := float64(pt.N), float64(pt.P), float64(pt.C)
	nb := pt.N / pt.Q
	s := res.MaxStats()
	model := bounds.MatMul25D(n, p, c)
	modelMem := 3 * float64(nb) * float64(nb)
	eval := core.Eval(m, model, p, modelMem)
	return []expectation{
		// Every rank multiplies its (n/q)³ share with multiply-adds — exactly
		// 2·n³/p flops — and for c > 1 combines the fiber reduce-scatter's
		// c−1 incoming chunks of nb²/c words at one flop per element.
		{quantity: "F", got: s.Flops, model: 2*n*n*n/p + reduceCombineFlops(nb, pt.C),
			band:   exactBand,
			detail: "busiest-rank flops vs exact multiply-adds 2n³/p + reduce combines (c−1)·nb²/c"},
		// The tracked footprint is exactly the 3 resident blocks.
		{quantity: "M", got: s.PeakMemWords, model: modelMem,
			band:   exactBand,
			detail: "peak tracked words vs exact 3·(n/q)² resident blocks"},
		{quantity: "W", got: s.WordsSent, model: model.Words,
			band:   wBand,
			detail: "busiest-rank words sent vs Eq. 7 W = n²/√(cp)"},
		{quantity: "S", got: s.MsgsSent, model: model.Msgs,
			band:   sBand,
			detail: "busiest-rank messages vs Eq. 7 S = √(p/c³) + log₂c"},
		{quantity: "T", got: res.Time(), model: eval.TotalTime(),
			band:   tBand,
			detail: "simulated runtime vs Eq. 1 priced on the Eq. 7 costs"},
		{quantity: "E", got: core.PriceSim(m, res).Total(), model: eval.TotalEnergy(),
			band:   eBand,
			detail: "priced energy vs Eq. 2 on the Eq. 7 costs"},
	}
}

func runMatMul25D(cost sim.Cost, m machine.Params, pt Point) (*algRun, error) {
	a := matrix.Random(pt.N, pt.N, 1)
	b := matrix.Random(pt.N, pt.N, 2)
	r, err := matmul.TwoPointFiveD(cost, pt.Q, pt.C, a, b)
	if err != nil {
		return nil, err
	}
	if d := r.C.MaxAbsDiff(matmul.Serial(a, b)); d > 1e-9*float64(pt.N) {
		return nil, fmt.Errorf("numerical mismatch vs serial: %g", d)
	}
	// Cannon-style 2.5D: replicate + align + 2(q/c−1) shifts + reduce.
	expects := matmulExpectations(m, pt, r.Sim,
		Band{1.8, 7}, Band{1.8, 12}, Band{1.8, 12}, Band{1.8, 6.5})
	if w, s, ok := cannonExact(pt.Q, pt.C, pt.N/pt.Q); ok {
		stats := r.Sim.MaxStats()
		expects = append(expects,
			expectation{quantity: "W", got: stats.WordsSent, model: w,
				band:   exactBand,
				detail: "busiest-rank words vs the exact replicate+align+shift+reduce count"},
			expectation{quantity: "S", got: stats.MsgsSent, model: s,
				band:   exactBand,
				detail: "busiest-rank messages vs the exact collective schedule count"},
		)
	}
	return &algRun{
		res:     r.Sim,
		expects: expects,
		lower:   classicalBounds(pt),
	}, nil
}

// cannonExact returns the exact words and messages the busiest rank of
// matmul.TwoPointFiveD sends — a layer-0 fiber root, which pays the
// BcastLarge root duties on top of the symmetric alignment, shift and
// reduce-scatter traffic every rank shares. With k = nb² block words:
//
//	c = 1: align (2 blocks) + 2(q−1) shift steps, all of k words;
//	c > 1: two replicate BcastLarges (a ⌈log2 c⌉-message one-word size
//	       announcement, a c−1-chunk scatter and a c−1-step ring
//	       all-gather of k/c words each), the same align and shift
//	       traffic, and the fiber ReduceLarge's c−1 ring chunks.
//
// Exactness requires the collectives' large-payload path (k ≥ c, c | k)
// and unfragmented messages (every sweep machine has MaxMsgWords far above
// any block); ok is false when the small-payload fallback would engage.
func cannonExact(q, c, nb int) (words, msgs float64, ok bool) {
	k := nb * nb
	if c == 1 {
		return float64(2 * q * k), float64(2 * q), true
	}
	if k < c || k%c != 0 {
		return 0, 0, false
	}
	kc := k / c
	rounds := bits.Len(uint(c - 1))
	words = float64(2*(rounds+2*(c-1)*kc) + 2*k + 2*(q/c-1)*k + (c-1)*kc)
	msgs = float64(2*(rounds+2*(c-1)) + 2 + 2*(q/c-1) + (c - 1))
	return words, msgs, true
}

func runMatMulSUMMA(cost sim.Cost, m machine.Params, pt Point) (*algRun, error) {
	a := matrix.Random(pt.N, pt.N, 3)
	b := matrix.Random(pt.N, pt.N, 4)
	r, err := matmul.TwoPointFiveDSUMMA(cost, pt.Q, pt.C, a, b)
	if err != nil {
		return nil, err
	}
	if d := r.C.MaxAbsDiff(matmul.Serial(a, b)); d > 1e-9*float64(pt.N) {
		return nil, fmt.Errorf("numerical mismatch vs serial: %g", d)
	}
	return &algRun{
		res: r.Sim,
		// SUMMA's per-panel broadcasts resend blocks and announce sizes, so
		// the W constant sits higher than Cannon's and S carries an extra
		// Θ((q/c)·log q) of announcement messages the Eq. 7 critical path
		// doesn't have; T/E follow S on latency-dominated sweep sizes.
		expects: matmulExpectations(m, pt, r.Sim,
			Band{1.7, 9}, Band{8, 21}, Band{5.5, 28}, Band{1.8, 9}),
		lower: classicalBounds(pt),
	}, nil
}

// matmulRectPoints sweeps genuinely non-square (m, k, n) shapes on
// non-square pr×pc grids — the coordinates the square-centric families
// never exercise, covering distinct aspect-ratio regimes of the Al Daas et
// al. rectangular bound.
func matmulRectPoints(l Level) []Point {
	pts := []Point{
		// Wide-ish C on a 2×4 grid, panelled k.
		{MDim: 24, KDim: 16, N: 32, PR: 2, PC: 4, Panel: 4, P: 8},
		// Tall-skinny: m ≫ k = n.
		{MDim: 64, KDim: 8, N: 8, PR: 4, PC: 2, Panel: 2, P: 8},
	}
	if l == Full {
		pts = append(pts,
			Point{MDim: 48, KDim: 32, N: 64, PR: 4, PC: 8, Panel: 4, P: 32},
			Point{MDim: 96, KDim: 96, N: 24, PR: 4, PC: 4, Panel: 8, P: 16},
		)
	}
	return pts
}

// rectSUMMAModel returns the per-rank receive volume and broadcast-step
// count of SUMMARect: every rank receives each A panel of its process row
// (mk/pr words over the whole k extent) and each B panel of its column
// (kn/pc), in 2·(k/panel) broadcast steps.
func rectSUMMAModel(pt Point) (words, steps float64) {
	m, k, n := float64(pt.MDim), float64(pt.KDim), float64(pt.N)
	return m*k/float64(pt.PR) + k*n/float64(pt.PC), 2 * k / float64(pt.Panel)
}

func runMatMulRect(cost sim.Cost, m machine.Params, pt Point) (*algRun, error) {
	a := matrix.Random(pt.MDim, pt.KDim, 12)
	b := matrix.Random(pt.KDim, pt.N, 13)
	r, err := matmul.SUMMARect(cost, pt.PR, pt.PC, pt.Panel, a, b)
	if err != nil {
		return nil, err
	}
	if d := r.C.MaxAbsDiff(matmul.Serial(a, b)); d > 1e-9*float64(pt.KDim) {
		return nil, fmt.Errorf("numerical mismatch vs serial: %g", d)
	}
	mm, kk, nn := float64(pt.MDim), float64(pt.KDim), float64(pt.N)
	p := float64(pt.P)
	rowsPer := pt.MDim / pt.PR
	colsPer := pt.N / pt.PC
	footprint := float64(rowsPer*(pt.KDim/pt.PC) + (pt.KDim/pt.PR)*colsPer + rowsPer*colsPer)
	s := r.Sim.MaxStats()
	modelW, modelS := rectSUMMAModel(pt)
	return &algRun{
		res: r.Sim,
		expects: []expectation{
			// Perfect balance: every rank multiplies rowsPer×panel×colsPer
			// blocks across the whole k extent — exactly 2·m·k·n/p flops.
			{quantity: "F", got: s.Flops, model: 2 * mm * kk * nn / p,
				band:   exactBand,
				detail: "busiest-rank flops vs exact multiply-adds 2·m·k·n/p"},
			{quantity: "M", got: s.PeakMemWords, model: footprint,
				band:   exactBand,
				detail: "peak tracked words vs exact A/B/C block footprint"},
			// Senders are the per-step broadcast roots; the busiest rank's
			// sent volume tracks the per-rank receive volume mk/pr + kn/pc
			// with a grid-dependent constant (roots resend their panel to
			// the BcastLarge scatter + allgather).
			{quantity: "W", got: s.WordsSent, model: modelW,
				band:   Band{0.7, 1.2},
				detail: "busiest-rank words sent vs SUMMA panel volume mk/pr + kn/pc"},
			{quantity: "S", got: s.MsgsSent, model: modelS,
				band:   Band{2.5, 8.5},
				detail: "busiest-rank messages vs 2·(k/panel) broadcast steps (BcastLarge sends size announcements + scatter/allgather chunks per step)"},
		},
		lower: bounds.MatMulBounds(bounds.MatMulProblem{
			M: mm, K: kk, N: nn, P: p, Mem: footprint,
		}),
	}, nil
}

func matmul3DPoints(l Level) []Point {
	pts := []Point{{N: 32, Q: 2, P: 8}}
	if l == Full {
		pts = append(pts, Point{N: 64, Q: 4, P: 64})
	}
	return pts
}

func runMatMul3D(cost sim.Cost, m machine.Params, pt Point) (*algRun, error) {
	a := matrix.Random(pt.N, pt.N, 5)
	b := matrix.Random(pt.N, pt.N, 6)
	r, err := matmul.ThreeD(cost, pt.Q, a, b)
	if err != nil {
		return nil, err
	}
	if d := r.C.MaxAbsDiff(matmul.Serial(a, b)); d > 1e-9*float64(pt.N) {
		return nil, fmt.Errorf("numerical mismatch vs serial: %g", d)
	}
	n, p := float64(pt.N), float64(pt.P)
	nb := pt.N / pt.Q
	s := r.Sim.MaxStats()
	// At the 3D limit M = n²/p^(2/3): each rank does one nb³ multiply.
	modelMem := 3 * float64(nb) * float64(nb)
	model := bounds.ClassicalMatMul(n, p, n*n/math.Pow(p, 2.0/3.0), m.MaxMsgWords)
	eval := core.Eval(m, model, p, modelMem)
	return &algRun{
		res: r.Sim,
		expects: []expectation{
			// One nb³ multiply plus the fiber reduce over q layers.
			{quantity: "F", got: s.Flops, model: 2*n*n*n/p + reduceCombineFlops(nb, pt.Q),
				band:   exactBand,
				detail: "busiest-rank flops vs exact 2n³/p + reduce combines (q−1)·nb²/q"},
			{quantity: "M", got: s.PeakMemWords, model: modelMem,
				band: exactBand, detail: "peak tracked words vs exact 3·(n/q)²"},
			{quantity: "W", got: s.WordsSent, model: model.Words,
				band: Band{4, 6.5}, detail: "busiest-rank words vs Eq. 8 at M = n²/p^(2/3)"},
			{quantity: "T", got: r.Sim.Time(), model: eval.TotalTime(),
				band: Band{3, 35}, detail: "simulated runtime vs Eq. 1 at the 3D limit (latency-heavy machines sit high)"},
			{quantity: "E", got: core.PriceSim(m, r.Sim).Total(), model: eval.TotalEnergy(),
				band: Band{2, 5.5}, detail: "priced energy vs Eq. 2 at the 3D limit"},
		},
		lower: classicalBounds(pt),
	}, nil
}

// reduceCombineFlops returns the exact per-rank combine flops of
// sim.Comm.ReduceLarge over a fiber of f members on an nb×nb block: the
// ring reduce-scatter charges one flop per element for each of the f−1
// incoming chunks of nb²/f words (every member alike). When the payload is
// too small to split, ReduceLarge falls back to the binomial tree whose
// root combines ⌈log2 f⌉ full blocks — the busiest rank either way.
func reduceCombineFlops(nb, f int) float64 {
	if f <= 1 {
		return 0
	}
	k := nb * nb
	if k >= f && k%f == 0 {
		return float64((f - 1) * (k / f))
	}
	return float64(bits.Len(uint(f-1))) * float64(k)
}

// classicalBounds returns the composite lower-bound set for a square
// classical matmul point: the exact-constant ITT memory-dependent bound at
// the point's tracked footprint 3·(n/q)² plus the Ballard et al.
// memory-independent bound.
func classicalBounds(pt Point) bounds.BoundSet {
	n := float64(pt.N)
	nb := float64(pt.N / pt.Q)
	return bounds.MatMulBounds(bounds.MatMulProblem{
		M: n, K: n, N: n,
		P:   float64(pt.P),
		Mem: 3 * nb * nb,
	})
}

// --- CAPS (Strassen) --------------------------------------------------------

func capsPoints(l Level) []Point {
	pts := []Point{{N: 56, K: 1, P: 7}}
	if l == Full {
		pts = append(pts, Point{N: 112, K: 1, P: 7}, Point{N: 112, K: 2, P: 49})
	}
	return pts
}

func runCAPS(cost sim.Cost, m machine.Params, pt Point) (*algRun, error) {
	a := matrix.Random(pt.N, pt.N, 7)
	b := matrix.Random(pt.N, pt.N, 8)
	r, err := strassen.CAPS(cost, pt.K, a, b, 8)
	if err != nil {
		return nil, err
	}
	if d := r.C.MaxAbsDiff(matmul.Serial(a, b)); d > 1e-8*float64(pt.N) {
		return nil, fmt.Errorf("numerical mismatch vs serial: %g", d)
	}
	n, p := float64(pt.N), float64(pt.P)
	s := r.Sim.MaxStats()
	omega := bounds.OmegaStrassen
	// CAPS runs at its natural footprint; use the tracked peak as the
	// model's M (the FLM regime prices W in terms of whatever M is used).
	mem := s.PeakMemWords
	model := bounds.FastMatMul(n, p, mem, m.MaxMsgWords, omega)
	eval := core.Eval(m, model, p, mem)
	return &algRun{
		res: r.Sim,
		expects: []expectation{
			// The classical sub-cutoff leaves do Θ(nb³) multiply-adds, so
			// the measured count sits a stable ~4x above the pure n^ω0/p
			// asymptote at cutoff 8.
			{quantity: "F", got: s.Flops, model: model.Flops,
				band:   Band{3.5, 4.5},
				detail: "busiest-rank flops vs n^ω0/p (cutoff-8 classical leaves carry ~4x)"},
			{quantity: "W", got: s.WordsSent, model: model.Words,
				band:   Band{6, 13},
				detail: "busiest-rank words vs Eq. 13 W = n^ω0/(p·M^(ω0/2−1))"},
			// The FLM forms drop the α·S term the deep CAPS recursion pays,
			// so T inflates hard on latency-heavy machines.
			{quantity: "T", got: r.Sim.Time(), model: eval.TotalTime(),
				band: Band{3.5, 80}, detail: "simulated runtime vs Eq. 1 on the FLM costs"},
			{quantity: "E", got: core.PriceSim(m, r.Sim).Total(), model: eval.TotalEnergy(),
				band: Band{3.5, 11}, detail: "priced energy vs Eq. 2 on the FLM costs"},
		},
		lower: bounds.MatMulBounds(bounds.MatMulProblem{
			M: n, K: n, N: n, P: p, Mem: mem, Omega0: omega,
		}),
	}, nil
}

// --- Stacked LU -------------------------------------------------------------

func luPoints(l Level) []Point {
	pts := []Point{{N: 32, Q: 4, C: 2, P: 32}}
	if l == Full {
		pts = append(pts, Point{N: 64, Q: 4, C: 2, P: 32}, Point{N: 64, Q: 4, C: 4, P: 64})
	}
	return pts
}

func runLU(cost sim.Cost, m machine.Params, pt Point) (*algRun, error) {
	a := matrix.RandomDiagDominant(pt.N, 9)
	r, err := lu.Stacked(cost, pt.Q, pt.C, a)
	if err != nil {
		return nil, err
	}
	if d := matrix.Mul(r.L, r.U).MaxAbsDiff(a); d > 1e-8*float64(pt.N) {
		return nil, fmt.Errorf("LU residual %g", d)
	}
	n, p := float64(pt.N), float64(pt.P)
	s := r.Sim.MaxStats()
	model := bounds.LU25D(n, p, s.PeakMemWords)
	eval := core.Eval(m, model, p, s.PeakMemWords)
	return &algRun{
		res: r.Sim,
		expects: []expectation{
			{quantity: "F", got: s.Flops, model: model.Flops,
				band:   Band{1.9, 2.4},
				detail: "busiest-rank flops vs n³/p (LU does ~2·(n³/p) ops as multiply-adds plus panel work)"},
			{quantity: "W", got: s.WordsSent, model: model.Words,
				band: Band{2.8, 5.5}, detail: "busiest-rank words vs W = n³/(p·√M)"},
			{quantity: "S", got: s.MsgsSent, model: model.Msgs,
				band:   Band{0.35, 2},
				detail: "busiest-rank messages vs the non-scaling S = √(cp) critical path"},
			{quantity: "T", got: r.Sim.Time(), model: eval.TotalTime(),
				band: Band{3, 7}, detail: "simulated runtime vs Eq. 1 on the LU costs"},
			{quantity: "E", got: core.PriceSim(m, r.Sim).Total(), model: eval.TotalEnergy(),
				band: Band{0.4, 1}, detail: "priced energy vs Eq. 2 on the LU costs"},
		},
		lower: bounds.LUBounds(n, p, s.PeakMemWords),
	}, nil
}

// --- N-body -----------------------------------------------------------------

func nbodyPoints(l Level) []Point {
	pts := []Point{
		{N: 64, P: 8, C: 1},
		{N: 128, P: 16, C: 2},
	}
	if l == Full {
		pts = append(pts, Point{N: 256, P: 64, C: 4}, Point{N: 256, P: 64, C: 8})
	}
	return pts
}

func runNBody(cost sim.Cost, m machine.Params, pt Point) (*algRun, error) {
	bodies := nbody.RandomBodies(pt.N, 10)
	r, err := nbody.Replicated(cost, pt.P, pt.C, bodies)
	if err != nil {
		return nil, err
	}
	if d := nbody.MaxAbsDiff(r.Forces, nbody.SerialForces(bodies)); d > 1e-9 {
		return nil, fmt.Errorf("force mismatch vs serial: %g", d)
	}
	n, p := float64(pt.N), float64(pt.P)
	k := pt.P / pt.C
	blockBodies := pt.N / k
	s := r.Sim.MaxStats()
	// The model's M counts replicated bodies: each team member holds the
	// resident + traveling block, M = Θ(c·n/p) bodies.
	memBodies := float64(pt.C) * n / p
	model := bounds.NBody(n, p, memBodies, m.MaxMsgWords, nbody.FlopsPerPair)
	eval := core.Eval(m, bounds.Costs{
		Flops: model.Flops,
		Words: model.Words * nbody.WordsPerBody,
		Msgs:  model.Msgs,
	}, p, s.PeakMemWords)
	return &algRun{
		res: r.Sim,
		expects: []expectation{
			{quantity: "F", got: s.Flops, model: model.Flops,
				band: Band{0.95, 1.05}, detail: "busiest-rank flops vs f·n²/p"},
			{quantity: "M", got: s.PeakMemWords,
				model:  float64(2*blockBodies*nbody.WordsPerBody + 3*blockBodies),
				band:   exactBand,
				detail: "peak tracked words vs exact resident+traveling blocks + forces"},
			{quantity: "W", got: s.WordsSent, model: model.Words * nbody.WordsPerBody,
				band:   Band{0.8, 3},
				detail: "busiest-rank words vs Eq. 15 W = n²/(p·M) (in words)"},
			{quantity: "T", got: r.Sim.Time(), model: eval.TotalTime(),
				band: Band{1.2, 28}, detail: "simulated runtime vs Eq. 1 on the n-body costs (latency-heavy machines sit high)"},
			{quantity: "E", got: core.PriceSim(m, r.Sim).Total(), model: eval.TotalEnergy(),
				band: Band{0.9, 2.2}, detail: "priced energy vs Eq. 2 on the n-body costs"},
		},
		lower: bounds.NBodyBounds(n, p, memBodies, nbody.WordsPerBody),
	}, nil
}

// --- FFT --------------------------------------------------------------------

func fftPoints(l Level) []Point {
	pts := []Point{
		{N: 512, P: 8, Tree: true},
		{N: 512, P: 8, Tree: false},
	}
	if l == Full {
		pts = append(pts, Point{N: 4096, P: 16, Tree: true}, Point{N: 4096, P: 16, Tree: false})
	}
	return pts
}

func runFFT(cost sim.Cost, m machine.Params, pt Point) (*algRun, error) {
	x := fft.RandomSignal(pt.N, 11)
	r, err := fft.Distributed(cost, pt.P, x, pt.Tree)
	if err != nil {
		return nil, err
	}
	if d := fft.MaxAbsDiff(r.Y, fft.Serial(x)); d > 1e-7*float64(pt.N) {
		return nil, fmt.Errorf("FFT mismatch vs serial: %g", d)
	}
	n, p := float64(pt.N), float64(pt.P)
	s := r.Sim.MaxStats()
	var model bounds.Costs
	if pt.Tree {
		model = bounds.FFTTree(n, p)
	} else {
		model = bounds.FFTNaive(n, p)
	}
	// A complex word is 2 real words; radix-2 butterflies cost ≈5 real
	// flops per element versus the paper's n·log₂n count.
	eval := core.Eval(m, bounds.Costs{
		Flops: 5 * model.Flops, Words: 2 * model.Words, Msgs: model.Msgs,
	}, p, s.PeakMemWords)
	// Exact per-rank traffic of the one all-to-all, in real words (a
	// complex element is 2 words, n/p² complex per destination block):
	// the naive exchange sends p−1 direct blocks; the Bruck tree sends
	// half its p-block buffer in each of the log₂p rounds (one SendRecv
	// per round). Exact for the power-of-two p the sweep uses.
	var exactW, exactS float64
	if pt.Tree {
		rounds := float64(bits.Len(uint(pt.P - 1)))
		exactW = rounds * n / p
		exactS = rounds
	} else {
		exactW = 2 * (p - 1) * n / (p * p)
		exactS = p - 1
	}
	return &algRun{
		res: r.Sim,
		expects: []expectation{
			{quantity: "F", got: s.Flops, model: 5 * model.Flops,
				band: Band{1.02, 1.2}, detail: "busiest-rank flops vs 5·n·log₂n/p real-op count"},
			{quantity: "W", got: s.WordsSent, model: exactW,
				band: exactBand, detail: "busiest-rank words vs the exact all-to-all schedule volume"},
			{quantity: "S", got: s.MsgsSent, model: exactS,
				band: exactBand, detail: "busiest-rank messages vs the exact all-to-all round count"},
			{quantity: "T", got: r.Sim.Time(), model: eval.TotalTime(),
				band: Band{0.7, 1.1}, detail: "simulated runtime vs Eq. 1 on the FFT costs"},
			{quantity: "E", got: core.PriceSim(m, r.Sim).Total(), model: eval.TotalEnergy(),
				band: Band{0.85, 1.25}, detail: "priced energy vs Eq. 2 on the FFT costs"},
		},
		// Peak tracked words → complex-element capacity for Hong–Kung.
		lower: bounds.FFTBounds(n, p, s.PeakMemWords/2),
	}, nil
}
