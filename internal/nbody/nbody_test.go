package nbody

import (
	"math"
	"testing"

	"perfscale/internal/sim"
)

var zeroCost = sim.Cost{}

func TestBodiesAccessors(t *testing.T) {
	b := RandomBodies(10, 1)
	if b.N() != 10 {
		t.Fatalf("N: %d", b.N())
	}
	x, y, z, m := b.Body(3)
	if x != b[12] || y != b[13] || z != b[14] || m != b[15] {
		t.Error("Body accessor layout wrong")
	}
	if m < 0.5 || m >= 1.5 {
		t.Errorf("mass %g outside [0.5, 1.5)", m)
	}
}

func TestRandomBodiesDeterministic(t *testing.T) {
	a := RandomBodies(5, 42)
	b := RandomBodies(5, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed should give same bodies")
		}
	}
}

func TestSerialForcesTwoBodySymmetry(t *testing.T) {
	// Two equal masses on the x axis attract each other equally and
	// oppositely (per unit mass, with equal masses).
	b := Bodies{0, 0, 0, 1, 1, 0, 0, 1}
	f := SerialForces(b)
	if f[0] <= 0 {
		t.Errorf("body 0 should be pulled toward +x, got %g", f[0])
	}
	if math.Abs(f[0]+f[3]) > 1e-12 {
		t.Errorf("forces should be opposite: %g vs %g", f[0], f[3])
	}
	if f[1] != 0 || f[2] != 0 || f[4] != 0 || f[5] != 0 {
		t.Error("off-axis force components should vanish")
	}
}

func TestSerialForcesMassScaling(t *testing.T) {
	// Doubling the source mass doubles the force on the target.
	b1 := Bodies{0, 0, 0, 1, 1, 0, 0, 1}
	b2 := Bodies{0, 0, 0, 1, 1, 0, 0, 2}
	f1 := SerialForces(b1)
	f2 := SerialForces(b2)
	if math.Abs(f2[0]-2*f1[0]) > 1e-12 {
		t.Errorf("force should scale with source mass: %g vs 2·%g", f2[0], f1[0])
	}
}

func TestAccumulateForcesPairCount(t *testing.T) {
	a := RandomBodies(4, 1)
	b := RandomBodies(6, 2)
	dst := make([]float64, 12)
	if pairs := AccumulateForces(dst, a, b, false); pairs != 24 {
		t.Errorf("pairs: got %d want 24", pairs)
	}
	dst = make([]float64, 12)
	if pairs := AccumulateForces(dst, a, a[:4*WordsPerBody], true); pairs != 12 {
		t.Errorf("self pairs: got %d want 4·3 = 12", pairs)
	}
}

func TestAccumulateForcesBadDst(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("short dst should panic")
		}
	}()
	AccumulateForces(make([]float64, 2), RandomBodies(4, 1), RandomBodies(4, 2), false)
}

func TestReplicatedMatchesSerial(t *testing.T) {
	for _, tc := range []struct{ n, p, c int }{
		{16, 4, 1},
		{16, 4, 2},  // k=2, c=2: c | k fails? k=2, c=2 ok (2|2): steps=1
		{32, 8, 2},  // k=4, steps=2
		{32, 16, 4}, // k=4, steps=1: 2D limit
		{24, 6, 1},
		{64, 16, 2}, // k=8, steps=4
	} {
		bodies := RandomBodies(tc.n, int64(tc.n+tc.p))
		want := SerialForces(bodies)
		got, err := Replicated(zeroCost, tc.p, tc.c, bodies)
		if err != nil {
			t.Fatalf("n=%d p=%d c=%d: %v", tc.n, tc.p, tc.c, err)
		}
		if d := MaxAbsDiff(got.Forces, want); d > 1e-9 {
			t.Errorf("n=%d p=%d c=%d: max force diff %g", tc.n, tc.p, tc.c, d)
		}
	}
}

func TestRingIsCEquals1(t *testing.T) {
	bodies := RandomBodies(24, 7)
	a, err := Ring(zeroCost, 4, bodies)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replicated(zeroCost, 4, 1, bodies)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(a.Forces, b.Forces); d != 0 {
		t.Errorf("Ring should equal Replicated(c=1): diff %g", d)
	}
}

func TestReplicatedValidation(t *testing.T) {
	bodies := RandomBodies(16, 1)
	if _, err := Replicated(zeroCost, 6, 4, bodies); err == nil {
		t.Error("c not dividing p should be rejected")
	}
	if _, err := Replicated(zeroCost, 27, 3, bodies); err == nil {
		t.Error("c=3, k=9: 16 bodies not divisible by ring size 9 should be rejected")
	}
	if _, err := Replicated(zeroCost, 8, 0, bodies); err == nil {
		t.Error("c=0 should be rejected")
	}
	if _, err := Replicated(zeroCost, 18, 3, bodies); err == nil {
		t.Error("c=3 not dividing k=6... 3|6 holds but 16 %% 6 != 0 — rejected for block size")
	}
	if _, err := Replicated(zeroCost, 8, 2, bodies); err != nil {
		t.Errorf("p=8 c=2 (k=4, 2|4, 16%%4=0) should be accepted: %v", err)
	}
}

func TestReplicatedFlopBalance(t *testing.T) {
	const n, p = 32, 8
	bodies := RandomBodies(n, 3)
	res, err := Replicated(zeroCost, p, 2, bodies)
	if err != nil {
		t.Fatal(err)
	}
	// Total interaction flops: n(n-1) ordered pairs × FlopsPerPair, plus
	// reduction additions.
	wantPairs := float64(n * (n - 1) * FlopsPerPair)
	got := res.Sim.TotalStats().Flops
	if got < wantPairs || got > wantPairs*1.2 {
		t.Errorf("total flops %g, want ≥ %g (pairs) and < 1.2x", got, wantPairs)
	}
	// Balance: max ≈ total/p within the reduction slack.
	maxF := res.Sim.MaxStats().Flops
	if maxF > got/p*1.3 {
		t.Errorf("imbalanced flops: max %g vs avg %g", maxF, got/float64(p))
	}
}

func TestReplicationReducesWords(t *testing.T) {
	// Fixed p = 16: c = 1, 2, 4 — words per rank should fall as replication
	// rises (W = n²/(p·M), M = c·n/p).
	const n = 64
	bodies := RandomBodies(n, 5)
	words := map[int]float64{}
	for _, c := range []int{1, 2, 4} {
		res, err := Replicated(zeroCost, 16, c, bodies)
		if err != nil {
			t.Fatalf("c=%d: %v", c, err)
		}
		words[c] = res.Sim.MaxStats().WordsSent
	}
	if !(words[2] < words[1]) || !(words[4] < words[2]) {
		t.Errorf("words should fall with c: %v", words)
	}
}

func TestReplicationRaisesMemory(t *testing.T) {
	const n = 64
	bodies := RandomBodies(n, 5)
	mem := map[int]float64{}
	for _, c := range []int{1, 2, 4} {
		res, err := Replicated(zeroCost, 16, c, bodies)
		if err != nil {
			t.Fatalf("c=%d: %v", c, err)
		}
		mem[c] = res.Sim.MaxStats().PeakMemWords
	}
	// M = Θ(c·n/p): doubling c doubles the tracked footprint.
	if !(mem[2] > mem[1]) || !(mem[4] > mem[2]) {
		t.Errorf("memory should grow with c: %v", mem)
	}
	if mem[2] != 2*mem[1] || mem[4] != 2*mem[2] {
		t.Errorf("memory should double with c: %v", mem)
	}
}

func TestPerfectStrongScalingTime(t *testing.T) {
	// Experiment E6 (simulator side): p = c·pmin with fixed per-rank block
	// size; simulated time should fall ≈ c.
	cost := sim.Cost{GammaT: 1e-9, BetaT: 4e-9, AlphaT: 1e-8}
	const n = 256
	bodies := RandomBodies(n, 9)
	// k = 8 constant => block size constant; p = 8, 16, 32 via c = 1, 2, 4.
	t1, err := Replicated(cost, 8, 1, bodies)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Replicated(cost, 16, 2, bodies)
	if err != nil {
		t.Fatal(err)
	}
	t4, err := Replicated(cost, 32, 4, bodies)
	if err != nil {
		t.Fatal(err)
	}
	s2 := t1.Sim.Time() / t2.Sim.Time()
	s4 := t1.Sim.Time() / t4.Sim.Time()
	if s2 < 1.6 || s2 > 2.4 {
		t.Errorf("speedup at c=2: %g, want ≈2", s2)
	}
	if s4 < 2.6 || s4 > 4.6 {
		t.Errorf("speedup at c=4: %g, want ≈4", s4)
	}
}

func TestMaxAbsDiffPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	MaxAbsDiff(make([]float64, 3), make([]float64, 4))
}

func TestReplicatedDeterministic(t *testing.T) {
	cost := sim.Cost{GammaT: 1e-9, BetaT: 1e-8, AlphaT: 1e-6}
	bodies := RandomBodies(32, 11)
	a, err := Replicated(cost, 8, 2, bodies)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replicated(cost, 8, 2, bodies)
	if err != nil {
		t.Fatal(err)
	}
	if a.Sim.Time() != b.Sim.Time() {
		t.Error("simulated time must be deterministic")
	}
	if MaxAbsDiff(a.Forces, b.Forces) != 0 {
		t.Error("forces must be bit-identical across runs")
	}
}
