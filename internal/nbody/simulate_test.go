package nbody

import (
	"math"
	"testing"
)

// spreadBodies returns bodies scattered over a 10-unit box: pairwise
// distances stay well above the softening length, so the dynamics are
// smooth and the serial and distributed integrators (which sum forces in
// different orders) stay numerically close over the test horizon.
func spreadBodies(n int, seed int64) Bodies {
	b := RandomBodies(n, seed)
	for i := 0; i < n; i++ {
		b[i*WordsPerBody] *= 10
		b[i*WordsPerBody+1] *= 10
		b[i*WordsPerBody+2] *= 10
	}
	return b
}

func TestDistributedSimulateMatchesSerial(t *testing.T) {
	// NewState takes ownership of the slice and StepSerial mutates in
	// place, so each integrator gets its own clone.
	base := NewState(spreadBodies(32, 50))
	serial := base.Clone()
	for step := 0; step < 5; step++ {
		StepSerial(serial, 1e-3)
	}
	dist, err := Simulate(zeroCost, 8, 2, base.Clone(), 5, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(dist.Final.Bodies, serial.Bodies); d > 1e-9 {
		t.Errorf("positions diverged: %g", d)
	}
	if d := MaxAbsDiff(dist.Final.Velocities, serial.Velocities); d > 1e-9 {
		t.Errorf("velocities diverged: %g", d)
	}
	// Two force evaluations per leapfrog step.
	if len(dist.Sims) != 10 {
		t.Errorf("expected 10 force evaluations, got %d", len(dist.Sims))
	}
	if dist.TotalSimTime() != 0 { // zero-cost clock: time stays 0
		t.Errorf("zero-cost total time %g", dist.TotalSimTime())
	}
}

func TestSimulateDoesNotMutateInput(t *testing.T) {
	bodies := RandomBodies(16, 51)
	st := NewState(bodies)
	orig := st.Clone()
	if _, err := Simulate(zeroCost, 4, 1, st, 3, 1e-3); err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(st.Bodies, orig.Bodies); d != 0 {
		t.Error("Simulate must not mutate the caller's state")
	}
}

func TestLeapfrogEnergyDrift(t *testing.T) {
	// A symplectic integrator keeps the energy error bounded and small for
	// a modest horizon; a driftless check would be too strict for softened
	// gravity, so require < 2% relative drift over 50 small steps.
	bodies := spreadBodies(24, 52)
	st := NewState(bodies)
	e0 := st.Energy()
	res, err := Simulate(zeroCost, 4, 1, st, 50, 5e-4)
	if err != nil {
		t.Fatal(err)
	}
	e1 := res.Final.Energy()
	drift := math.Abs(e1-e0) / math.Abs(e0)
	if drift > 0.02 {
		t.Errorf("energy drift %.3f%% over 50 steps", 100*drift)
	}
}

func TestSimulateZeroSteps(t *testing.T) {
	bodies := RandomBodies(8, 53)
	st := NewState(bodies)
	res, err := Simulate(zeroCost, 4, 1, st, 0, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(res.Final.Bodies, st.Bodies); d != 0 {
		t.Error("zero steps should be identity")
	}
	if len(res.Sims) != 0 {
		t.Error("zero steps should not evaluate forces")
	}
}

func TestSimulateValidation(t *testing.T) {
	st := NewState(RandomBodies(8, 54))
	if _, err := Simulate(zeroCost, 4, 1, st, -1, 1e-3); err == nil {
		t.Error("negative steps should be rejected")
	}
	if _, err := Simulate(zeroCost, 5, 2, st, 1, 1e-3); err == nil {
		t.Error("invalid p/c should propagate")
	}
}

func TestDriftMovesAlongVelocity(t *testing.T) {
	st := NewState(Bodies{0, 0, 0, 1})
	st.Velocities = []float64{1, 2, 3}
	st.drift(0.5)
	if st.Bodies[0] != 0.5 || st.Bodies[1] != 1 || st.Bodies[2] != 1.5 {
		t.Errorf("drift wrong: %v", st.Bodies[:3])
	}
	if st.Bodies[3] != 1 {
		t.Error("mass must not move")
	}
}

func TestKick(t *testing.T) {
	st := NewState(Bodies{0, 0, 0, 1})
	st.kick([]float64{2, 4, 6}, 0.5)
	if st.Velocities[0] != 1 || st.Velocities[1] != 2 || st.Velocities[2] != 3 {
		t.Errorf("kick wrong: %v", st.Velocities)
	}
}

func TestTwoBodyOrbitSymmetry(t *testing.T) {
	// Equal masses, symmetric initial conditions: the center of mass must
	// stay put through a distributed simulation.
	bodies := Bodies{
		-0.5, 0, 0, 1,
		0.5, 0, 0, 1,
	}
	st := NewState(bodies)
	st.Velocities = []float64{0, -0.3, 0, 0, 0.3, 0}
	res, err := Simulate(zeroCost, 2, 1, st, 20, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	cx := res.Final.Bodies[0] + res.Final.Bodies[4]
	cy := res.Final.Bodies[1] + res.Final.Bodies[5]
	if math.Abs(cx) > 1e-9 || math.Abs(cy) > 1e-9 {
		t.Errorf("center of mass moved: (%g, %g)", cx, cy)
	}
}
