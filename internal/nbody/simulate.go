package nbody

import (
	"fmt"
	"math"

	"perfscale/internal/sim"
)

// State is a full particle system: positions+masses and velocities.
type State struct {
	Bodies     Bodies    // stride WordsPerBody: x, y, z, mass
	Velocities []float64 // stride 3: vx, vy, vz
}

// NewState pairs bodies with zero velocities. It takes ownership of the
// slice: integrator steps mutate it in place (Clone first to keep the
// original).
func NewState(b Bodies) *State {
	return &State{Bodies: b, Velocities: make([]float64, 3*b.N())}
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	b := make(Bodies, len(s.Bodies))
	copy(b, s.Bodies)
	v := make([]float64, len(s.Velocities))
	copy(v, s.Velocities)
	return &State{Bodies: b, Velocities: v}
}

// kick applies velocities += dt·forces (forces are per unit mass).
func (s *State) kick(forces []float64, dt float64) {
	for i := range s.Velocities {
		s.Velocities[i] += dt * forces[i]
	}
}

// drift applies positions += dt·velocities.
func (s *State) drift(dt float64) {
	n := s.Bodies.N()
	for i := 0; i < n; i++ {
		s.Bodies[i*WordsPerBody] += dt * s.Velocities[3*i]
		s.Bodies[i*WordsPerBody+1] += dt * s.Velocities[3*i+1]
		s.Bodies[i*WordsPerBody+2] += dt * s.Velocities[3*i+2]
	}
}

// StepSerial advances the state one leapfrog (kick-drift-kick) step with
// serial force evaluation — the reference integrator.
func StepSerial(s *State, dt float64) {
	f := SerialForces(s.Bodies)
	s.kick(f, dt/2)
	s.drift(dt)
	f = SerialForces(s.Bodies)
	s.kick(f, dt/2)
}

// SimulateResult is the outcome of a distributed n-body simulation.
type SimulateResult struct {
	// Final is the state after all steps.
	Final *State
	// Sims holds the per-step simulation statistics of the force
	// evaluations (two per leapfrog step).
	Sims []*sim.Result
}

// Simulate advances the system `steps` leapfrog steps of size dt, computing
// forces with the data-replicating distributed algorithm on p ranks with
// replication c. Each force evaluation is a fresh simulator run (the
// paper's per-iteration costs apply per evaluation); the integrator itself
// is the driver-side glue a real application would run.
func Simulate(cost sim.Cost, p, c int, s *State, steps int, dt float64) (*SimulateResult, error) {
	if steps < 0 {
		return nil, fmt.Errorf("nbody: negative step count %d", steps)
	}
	out := &SimulateResult{Final: s.Clone()}
	forces := func() ([]float64, error) {
		res, err := Replicated(cost, p, c, out.Final.Bodies)
		if err != nil {
			return nil, err
		}
		out.Sims = append(out.Sims, res.Sim)
		return res.Forces, nil
	}
	for step := 0; step < steps; step++ {
		f, err := forces()
		if err != nil {
			return nil, fmt.Errorf("nbody: step %d: %w", step, err)
		}
		out.Final.kick(f, dt/2)
		out.Final.drift(dt)
		f, err = forces()
		if err != nil {
			return nil, fmt.Errorf("nbody: step %d: %w", step, err)
		}
		out.Final.kick(f, dt/2)
	}
	return out, nil
}

// TotalSimTime sums the simulated wall time of every force evaluation.
func (r *SimulateResult) TotalSimTime() float64 {
	t := 0.0
	for _, s := range r.Sims {
		t += s.Time()
	}
	return t
}

// Energy returns the system's kinetic plus (softened) potential energy —
// the conserved quantity a symplectic integrator should approximately
// preserve.
func (s *State) Energy() float64 {
	n := s.Bodies.N()
	e := 0.0
	for i := 0; i < n; i++ {
		_, _, _, m := s.Bodies.Body(i)
		v2 := s.Velocities[3*i]*s.Velocities[3*i] +
			s.Velocities[3*i+1]*s.Velocities[3*i+1] +
			s.Velocities[3*i+2]*s.Velocities[3*i+2]
		e += 0.5 * m * v2
	}
	for i := 0; i < n; i++ {
		xi, yi, zi, mi := s.Bodies.Body(i)
		for j := i + 1; j < n; j++ {
			xj, yj, zj, mj := s.Bodies.Body(j)
			dx, dy, dz := xj-xi, yj-yi, zj-zi
			r2 := dx*dx + dy*dy + dz*dz + Softening*Softening
			e -= mi * mj / math.Sqrt(r2)
		}
	}
	return e
}
