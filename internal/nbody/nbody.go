// Package nbody implements the direct O(n²) n-body force computation: a
// serial reference and the communication-optimal data-replicating parallel
// algorithm of Driscoll, Koanantakool, Georganas, Solomonik and Yelick that
// the paper analyzes in Section IV.
//
// The parallel algorithm arranges p ranks as c teams of k = p/c ranks.
// Particles are split into k blocks of n/k bodies; every team holds a full
// copy of its column's block (the c-fold replication that buys the paper's
// perfect strong scaling). Each team then runs k/c ring-shift steps over a
// disjoint range of source blocks, and the partial forces on each block are
// summed across teams. Per-rank costs are F = f·n²/p, W = Θ(n²/(p·M)) with
// M = Θ(c·n/p) — exactly the Section IV expressions.
package nbody

import (
	"fmt"
	"math"
	"math/rand"

	"perfscale/internal/sim"
)

// WordsPerBody is the storage per body: x, y, z, mass.
const WordsPerBody = 4

// Softening is the Plummer softening added to squared distances so
// coincident bodies do not produce infinities.
const Softening = 1e-3

// FlopsPerPair is the f of the paper's model for this interaction kernel:
// 3 subtractions, 7 ops for the softened squared distance, 3 for the
// inverse-cube factor (sqrt, multiply, divide), and 6 multiply-adds to
// accumulate the force components.
const FlopsPerPair = 19

// Bodies is a flat slice of bodies with stride WordsPerBody.
type Bodies []float64

// N returns the number of bodies.
func (b Bodies) N() int { return len(b) / WordsPerBody }

// Body returns the position and mass of body i.
func (b Bodies) Body(i int) (x, y, z, m float64) {
	o := i * WordsPerBody
	return b[o], b[o+1], b[o+2], b[o+3]
}

// RandomBodies returns n bodies with positions uniform in [0,1)³ and masses
// uniform in [0.5, 1.5), drawn from a deterministic generator.
func RandomBodies(n int, seed int64) Bodies {
	rng := rand.New(rand.NewSource(seed))
	b := make(Bodies, n*WordsPerBody)
	for i := 0; i < n; i++ {
		o := i * WordsPerBody
		b[o] = rng.Float64()
		b[o+1] = rng.Float64()
		b[o+2] = rng.Float64()
		b[o+3] = 0.5 + rng.Float64()
	}
	return b
}

// AccumulateForces adds to dst (length 3·targets.N()) the softened
// gravitational force per unit mass exerted on each target body by every
// source body. When skipEqualIndex is true, the pair (i, i) is skipped —
// used when targets and sources are the same block. It returns the number
// of pair interactions evaluated.
func AccumulateForces(dst []float64, targets, sources Bodies, skipEqualIndex bool) int {
	nt, ns := targets.N(), sources.N()
	if len(dst) != 3*nt {
		panic(fmt.Sprintf("nbody: dst length %d != 3·%d", len(dst), nt))
	}
	pairs := 0
	for i := 0; i < nt; i++ {
		xi, yi, zi, _ := targets.Body(i)
		var fx, fy, fz float64
		for j := 0; j < ns; j++ {
			if skipEqualIndex && i == j {
				continue
			}
			xj, yj, zj, mj := sources.Body(j)
			dx, dy, dz := xj-xi, yj-yi, zj-zi
			r2 := dx*dx + dy*dy + dz*dz + Softening*Softening
			inv := 1 / (r2 * math.Sqrt(r2))
			s := mj * inv
			fx += s * dx
			fy += s * dy
			fz += s * dz
			pairs++
		}
		dst[3*i] += fx
		dst[3*i+1] += fy
		dst[3*i+2] += fz
	}
	return pairs
}

// SerialForces computes the forces on every body against every other —
// the verification baseline.
func SerialForces(b Bodies) []float64 {
	f := make([]float64, 3*b.N())
	AccumulateForces(f, b, b, true)
	return f
}

// RunResult bundles the assembled forces with the simulation statistics.
type RunResult struct {
	// Forces holds 3 components per body, in body order.
	Forces []float64
	// Sim holds per-rank counters and virtual clocks.
	Sim *sim.Result
}

// Replicated computes all forces on p ranks with replication factor c.
// Requirements: c ≥ 1, c divides p, c divides k = p/c (each team must cover
// an integer number of shift steps), and k divides the body count.
// c = 1 is the classical ring algorithm (M = n/p); c = √p is the fully
// replicated 2D limit (M = n/√p).
func Replicated(cost sim.Cost, p, c int, bodies Bodies) (*RunResult, error) {
	n := bodies.N()
	if c < 1 || p%c != 0 {
		return nil, fmt.Errorf("nbody: replication %d must divide p = %d", c, p)
	}
	k := p / c
	if k%c != 0 {
		return nil, fmt.Errorf("nbody: c = %d must divide the ring size k = %d (c² | p)", c, k)
	}
	if n%k != 0 {
		return nil, fmt.Errorf("nbody: %d bodies not divisible by ring size %d", n, k)
	}
	blockBodies := n / k
	blockWords := blockBodies * WordsPerBody
	forceWords := 3 * blockBodies
	stepsPerTeam := k / c

	// Rank layout: rank = team·k + position. Teams are the replicas; the
	// "column" communicator of position j spans the c replicas of block j.
	rankAt := func(team, pos int) int { return team*k + pos }
	results := make([][]float64, k)

	res, err := sim.Run(p, cost, func(r *sim.Rank) error {
		team := r.ID() / k
		pos := r.ID() % k
		ring, err := ringComm(r, team, k, rankAt)
		if err != nil {
			return err
		}
		column, err := columnComm(r, pos, c, k, rankAt)
		if err != nil {
			return err
		}
		// Resident + traveling block + force accumulator.
		r.Alloc(2*blockWords + forceWords)

		// Replicate block `pos` from team 0 down the column.
		r.Phase("replicate")
		var resident []float64
		if team == 0 {
			resident = bodies[pos*blockWords : (pos+1)*blockWords]
		}
		resident = column.BcastLarge(0, resident)

		// Team `team` handles source blocks pos+team·(k/c)+t, t ∈ [0, k/c).
		// The traveling copy starts team·(k/c) positions ahead: fetch it
		// with a single shift by that offset, then shift by one each step.
		r.Phase("force-shift")
		traveling := ring.Shift(resident, -team*stepsPerTeam)
		forces := make([]float64, forceWords)
		for t := 0; t < stepsPerTeam; t++ {
			srcIdx := (pos + team*stepsPerTeam + t) % k
			pairs := AccumulateForces(forces, Bodies(resident), Bodies(traveling), srcIdx == pos)
			r.Compute(FlopsPerPair * float64(pairs))
			if t < stepsPerTeam-1 {
				traveling = ring.Shift(traveling, -1)
			}
		}

		// Sum the per-team partial forces for block `pos` onto team 0.
		r.Phase("reduce")
		total := column.ReduceLarge(0, forces, sim.OpSum)
		if team == 0 {
			results[pos] = total
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	forces := make([]float64, 3*n)
	for pos, blk := range results {
		copy(forces[pos*forceWords:(pos+1)*forceWords], blk)
	}
	return &RunResult{Forces: forces, Sim: res}, nil
}

// Ring runs the classical c = 1 ring algorithm.
func Ring(cost sim.Cost, p int, bodies Bodies) (*RunResult, error) {
	return Replicated(cost, p, 1, bodies)
}

// ringComm builds the team's ring communicator (fixed team, all positions).
func ringComm(r *sim.Rank, team, k int, rankAt func(int, int) int) (*sim.Comm, error) {
	members := make([]int, k)
	for pos := 0; pos < k; pos++ {
		members[pos] = rankAt(team, pos)
	}
	return r.NewComm(members)
}

// columnComm builds the replica communicator of one block position (all
// teams, fixed position), ordered by team.
func columnComm(r *sim.Rank, pos, c, k int, rankAt func(int, int) int) (*sim.Comm, error) {
	members := make([]int, c)
	for team := 0; team < c; team++ {
		members[team] = rankAt(team, pos)
	}
	return r.NewComm(members)
}

// MaxAbsDiff returns the largest componentwise difference between two force
// arrays.
func MaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("nbody: force lengths differ: %d vs %d", len(a), len(b)))
	}
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}
