package hetero

import (
	"math/rand"
	"testing"
)

// Randomized properties of the partitioner and subset search: invariants
// that must hold for every ensemble, complementing the constructed cases in
// hetero_test.go.

// drawProc builds a random but valid processor.
func drawProc(rng *rand.Rand) Proc {
	return Proc{
		Name:   "r",
		GammaT: 1e-12 * (1 + 99*rng.Float64()),
		BetaT:  1e-10 * (1 + 9*rng.Float64()),
		AlphaT: 1e-7 * (1 + 9*rng.Float64()),
		GammaE: 1e-10 * (1 + 9*rng.Float64()),
		BetaE:  1e-10 * rng.Float64(),
		AlphaE: 1e-8 * rng.Float64(),
		DeltaE: 1e-9 * rng.Float64(), EpsilonE: rng.Float64(),
		MemWords: float64(int(1) << (20 + rng.Intn(10))), MaxMsgWords: 1 << 20,
	}
}

func drawEnsemble(rng *rand.Rand) []Proc {
	procs := make([]Proc, 1+rng.Intn(6))
	for i := range procs {
		procs[i] = drawProc(rng)
	}
	return procs
}

func TestPartitionPropertyInvariants(t *testing.T) {
	const work = 1e12
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		procs := drawEnsemble(rng)
		part, err := PartitionFlops(procs, work)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Shares conserve the workload and are all positive.
		sum := 0.0
		for i, f := range part.Shares {
			if f <= 0 {
				t.Errorf("seed %d: share %d = %g not positive", seed, i, f)
			}
			sum += f
		}
		if !approx(sum, work, 1e-9) {
			t.Errorf("seed %d: shares sum to %g, want %g", seed, sum, work)
		}
		// Every processor finishes at the common T.
		for i, p := range procs {
			if !approx(part.Shares[i]*p.effSecondsPerFlop(), part.Time, 1e-9) {
				t.Errorf("seed %d: processor %d misses the common finish", seed, i)
			}
		}
		// Doubling the workload doubles T and every share (the model is
		// linear in F).
		double, err := PartitionFlops(procs, 2*work)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(double.Time, 2*part.Time, 1e-9) {
			t.Errorf("seed %d: T(2F) = %g, want %g", seed, double.Time, 2*part.Time)
		}
	}
}

func TestPartitionPropertyPermutationInvariant(t *testing.T) {
	const work = 1e12
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		procs := drawEnsemble(rng)
		part, err := PartitionFlops(procs, work)
		if err != nil {
			t.Fatal(err)
		}
		perm := rng.Perm(len(procs))
		shuffled := make([]Proc, len(procs))
		for i, j := range perm {
			shuffled[i] = procs[j]
		}
		part2, err := PartitionFlops(shuffled, work)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(part2.Time, part.Time, 1e-12) || !approx(part2.Energy, part.Energy, 1e-12) {
			t.Errorf("seed %d: partition not permutation-invariant (T %g vs %g, E %g vs %g)",
				seed, part2.Time, part.Time, part2.Energy, part.Energy)
		}
		for i, j := range perm {
			if !approx(part2.Shares[i], part.Shares[j], 1e-12) {
				t.Errorf("seed %d: share of processor %d changed under permutation", seed, j)
			}
		}
	}
}

func TestPartitionPropertyMoreProcsNeverSlower(t *testing.T) {
	const work = 1e12
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		procs := drawEnsemble(rng)
		full, err := PartitionFlops(procs, work)
		if err != nil {
			t.Fatal(err)
		}
		if len(procs) < 2 {
			continue
		}
		sub, err := PartitionFlops(procs[:len(procs)-1], work)
		if err != nil {
			t.Fatal(err)
		}
		if full.Time >= sub.Time {
			t.Errorf("seed %d: adding a processor did not shorten the run (%g vs %g)",
				seed, full.Time, sub.Time)
		}
	}
}

func TestBestSubsetPropertyNeverWorseThanFull(t *testing.T) {
	const work = 1e12
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		procs := drawEnsemble(rng)
		full, err := PartitionFlops(procs, work)
		if err != nil {
			t.Fatal(err)
		}
		idx, best, err := BestSubset(procs, work, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(idx) == 0 || len(idx) > len(procs) {
			t.Fatalf("seed %d: nonsense subset %v", seed, idx)
		}
		// The search includes the full prefix, so it can never return more
		// energy than using everything (up to its own tie tolerance).
		if best.Energy > full.Energy*(1+1e-9) {
			t.Errorf("seed %d: best subset costs %g > full ensemble %g", seed, best.Energy, full.Energy)
		}
		// A deadline at the full-ensemble time is always feasible.
		if _, _, err := BestSubset(procs, work, full.Time*(1+1e-9)); err != nil {
			t.Errorf("seed %d: full-ensemble deadline reported infeasible: %v", seed, err)
		}
	}
}
