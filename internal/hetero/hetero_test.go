package hetero

import (
	"math"
	"testing"

	"perfscale/internal/machine"
)

func fastProc() Proc {
	return Proc{Name: "fast", GammaT: 1e-12, BetaT: 1e-10, AlphaT: 1e-7,
		GammaE: 1e-10, BetaE: 1e-10, DeltaE: 1e-9, EpsilonE: 1,
		MemWords: 1 << 30, MaxMsgWords: 1 << 20}
}

func slowProc() Proc {
	p := fastProc()
	p.Name = "slow"
	p.GammaT *= 10
	return p
}

func approx(got, want, rel float64) bool {
	if want == 0 {
		return math.Abs(got) < rel
	}
	return math.Abs(got-want)/math.Abs(want) < rel
}

func TestHomogeneousSplitsEvenly(t *testing.T) {
	procs := []Proc{fastProc(), fastProc(), fastProc(), fastProc()}
	part, err := PartitionFlops(procs, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range part.Shares {
		if !approx(f, 2.5e11, 1e-12) {
			t.Errorf("share %d = %g, want 2.5e11", i, f)
		}
	}
	// T equals the homogeneous per-proc time.
	want := 2.5e11 * procs[0].effSecondsPerFlop()
	if !approx(part.Time, want, 1e-12) {
		t.Errorf("T = %g, want %g", part.Time, want)
	}
}

func TestSharesProportionalToSpeed(t *testing.T) {
	procs := []Proc{fastProc(), slowProc()}
	part, err := PartitionFlops(procs, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	ratio := part.Shares[0] / part.Shares[1]
	want := procs[1].effSecondsPerFlop() / procs[0].effSecondsPerFlop()
	if !approx(ratio, want, 1e-12) {
		t.Errorf("share ratio %g, want speed ratio %g", ratio, want)
	}
	// Shares conserve the total.
	if !approx(part.Shares[0]+part.Shares[1], 1e12, 1e-12) {
		t.Error("shares must sum to the workload")
	}
	// Equal finish: both processors take exactly T.
	for i, p := range procs {
		if !approx(part.Shares[i]*p.effSecondsPerFlop(), part.Time, 1e-12) {
			t.Errorf("processor %d does not finish at T", i)
		}
	}
}

func TestEqualFinishIsOptimal(t *testing.T) {
	// Moving work from one processor to another must raise the max time.
	procs := []Proc{fastProc(), slowProc()}
	part, err := PartitionFlops(procs, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	for _, delta := range []float64{1e9, -1e9} {
		t0 := (part.Shares[0] + delta) * procs[0].effSecondsPerFlop()
		t1 := (part.Shares[1] - delta) * procs[1].effSecondsPerFlop()
		if math.Max(t0, t1) <= part.Time {
			t.Errorf("perturbation %g should not improve the makespan", delta)
		}
	}
}

func TestHeterogeneousBeatsFastAlone(t *testing.T) {
	// Adding the slow processor still shortens the runtime (it takes some
	// work), even if not by much.
	fast := []Proc{fastProc()}
	both := []Proc{fastProc(), slowProc()}
	pf, err := PartitionFlops(fast, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := PartitionFlops(both, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	if pb.Time >= pf.Time {
		t.Errorf("two processors should beat one: %g vs %g", pb.Time, pf.Time)
	}
	// Ideal: T falls by the throughput ratio ≈ 10/11 (the communication
	// term shifts it by a fraction of a percent).
	if !approx(pb.Time, pf.Time*10/11, 1e-2) {
		t.Errorf("T ratio %g, want ≈10/11", pb.Time/pf.Time)
	}
}

func TestPartitionValidation(t *testing.T) {
	if _, err := PartitionFlops(nil, 1); err == nil {
		t.Error("empty ensemble should be rejected")
	}
	if _, err := PartitionFlops([]Proc{fastProc()}, 0); err == nil {
		t.Error("zero work should be rejected")
	}
	bad := fastProc()
	bad.MemWords = 0
	if _, err := PartitionFlops([]Proc{bad}, 1); err == nil {
		t.Error("invalid processor should be rejected")
	}
}

func TestBestSubsetDropsPowerHog(t *testing.T) {
	// A slow processor with enormous leakage: it shortens the runtime a
	// little but burns leakage the whole run — the energy optimum excludes
	// it.
	hog := slowProc()
	hog.Name = "hog"
	hog.EpsilonE = 1e5
	procs := []Proc{fastProc(), hog}
	idx, part, err := BestSubset(procs, 1e12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 1 || idx[0] != 0 {
		t.Errorf("energy optimum should use only the fast processor, got %v", idx)
	}
	// But with a deadline only the full ensemble can meet, it is included.
	full, err := PartitionFlops(procs, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	deadline := full.Time * 1.001 // below the fast-alone time
	idx2, part2, err := BestSubset(procs, 1e12, deadline)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx2) != 2 {
		t.Errorf("deadline should force both processors, got %v", idx2)
	}
	if part2.Energy <= part.Energy {
		t.Error("meeting the deadline must cost energy")
	}
}

func TestBestSubsetKeepsEfficientHelpers(t *testing.T) {
	// A second identical processor halves the runtime and therefore halves
	// every static (δe·M + εe)·T term per processor — total energy is
	// EXACTLY unchanged. That is the paper's headline ("no additional
	// energy") emerging from the heterogeneous model; the subset search
	// prefers the faster ensemble on the tie.
	procs := []Proc{fastProc(), fastProc()}
	one, err := PartitionFlops(procs[:1], 1e12)
	if err != nil {
		t.Fatal(err)
	}
	two, err := PartitionFlops(procs, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(two.Energy, one.Energy, 1e-12) {
		t.Errorf("twin should cost no additional energy: %g vs %g", two.Energy, one.Energy)
	}
	if !approx(two.Time, one.Time/2, 1e-12) {
		t.Errorf("twin should halve the runtime: %g vs %g", two.Time, one.Time)
	}
	idx, _, err := BestSubset(procs, 1e12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 2 {
		t.Errorf("identical twin should be included, got %v", idx)
	}
}

func TestBestSubsetDeadlineInfeasible(t *testing.T) {
	if _, _, err := BestSubset([]Proc{fastProc()}, 1e12, 1e-9); err == nil {
		t.Error("impossible deadline should be reported")
	}
}

func TestEnsembleEnergyAccounting(t *testing.T) {
	p := fastProc()
	shares := []float64{1e10}
	T := 7.0
	got := EnsembleEnergy([]Proc{p}, shares, T)
	want := p.effJoulesPerFlop()*1e10 + p.DeltaE*p.MemWords*T + p.EpsilonE*T
	if !approx(got, want, 1e-12) {
		t.Errorf("energy %g, want %g", got, want)
	}
}

func TestTableIIEnsemble(t *testing.T) {
	// Partition a workload across three Table II devices: the GTX 590, the
	// Sandy Bridge and the 2 GHz Cortex-A9. Shares must order by speed and
	// the GPU must dominate.
	devices := machineDevices(t, "Nvidia GTX590", "Intel Sandy Bridge 2687W", "ARM Cortex A9 (2.0GHz)")
	procs := make([]Proc, len(devices))
	for i, d := range devices {
		procs[i] = FromDevice(d, 1e-10, 1e-7, 1e-10, 0, 1e-9, 0.1, 1<<30, 1<<20)
	}
	part, err := PartitionFlops(procs, 1e13)
	if err != nil {
		t.Fatal(err)
	}
	if !(part.Shares[0] > part.Shares[1] && part.Shares[1] > part.Shares[2]) {
		t.Errorf("shares should order by device speed: %v", part.Shares)
	}
	if part.Shares[0] < 0.8*1e13 {
		t.Errorf("the GPU should take the bulk of the work: %v", part.Shares)
	}
	// The A9 contributes so little that, under the energy objective with
	// its leakage running for the whole job, dropping it is no loss.
	idx, _, err := BestSubset(procs, 1e13, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range idx {
		if procs[i].Name == "ARM Cortex A9 (2.0GHz)" && len(idx) < len(procs) {
			t.Errorf("subset %v unexpectedly keeps the A9 while dropping others", idx)
		}
	}
}

func machineDevices(t *testing.T, names ...string) []machine.DeviceSpec {
	t.Helper()
	var out []machine.DeviceSpec
	for _, want := range names {
		found := false
		for _, d := range machine.TableIIDevices() {
			if d.Name == want {
				out = append(out, d)
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("device %q not in Table II", want)
		}
	}
	return out
}
