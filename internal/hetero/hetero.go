// Package hetero extends the energy model to heterogeneous machines, the
// direction the paper points at in Section III via its citation of
// "Communication Bounds for Heterogeneous Architectures" (Ballard, Demmel,
// Gearhart): processors with different speeds, link parameters and
// memories. Work is partitioned so every processor finishes together —
// each processor's share is proportional to its effective throughput with
// communication folded in — and the energy model of Eq. 2 is summed with
// per-processor parameters.
//
// The package also answers the question heterogeneity makes interesting:
// whether using *all* processors is worth it. A slow, power-hungry device
// barely shortens the runtime but leaks energy for the whole run, so the
// energy-optimal ensemble is often a subset.
package hetero

import (
	"fmt"
	"math"
	"sort"

	"perfscale/internal/machine"
)

// Proc is one processor of a heterogeneous ensemble, carrying its own copy
// of every model parameter.
type Proc struct {
	// Name identifies the device ("gpu0", "bigcore", ...).
	Name string
	// GammaT/BetaT/AlphaT are the per-flop/word/message times.
	GammaT, BetaT, AlphaT float64
	// GammaE/BetaE/AlphaE/DeltaE/EpsilonE are the energy parameters.
	GammaE, BetaE, AlphaE, DeltaE, EpsilonE float64
	// MemWords is the processor's usable memory M_i.
	MemWords float64
	// MaxMsgWords is its m_i.
	MaxMsgWords float64
}

// effSecondsPerFlop returns the processor's time per matmul flop with its
// communication folded in: γt_i + (βt_i + αt_i/m_i)/√M_i, from
// T_i = γt_i·F_i + βt'_i·F_i/√M_i (each processor runs at its own
// communication-optimal blocking W_i = F_i/√M_i).
func (p Proc) effSecondsPerFlop() float64 {
	return p.GammaT + (p.BetaT+p.AlphaT/p.MaxMsgWords)/math.Sqrt(p.MemWords)
}

// effJoulesPerFlop returns the processor's flop-proportional energy:
// γe_i + (βe_i + αe_i/m_i)/√M_i.
func (p Proc) effJoulesPerFlop() float64 {
	return p.GammaE + (p.BetaE+p.AlphaE/p.MaxMsgWords)/math.Sqrt(p.MemWords)
}

// Partition is the result of dividing a workload across an ensemble.
type Partition struct {
	// Shares[i] is the flop count assigned to procs[i] (same order).
	Shares []float64
	// Time is the common finish time.
	Time float64
	// Energy is the total Eq. 2 energy summed over processors.
	Energy float64
}

// PartitionFlops divides totalFlops so every processor finishes at the same
// instant — the max-time-minimizing split. With T_i = s_i·F_i (s_i the
// effective seconds per flop), equal finish means F_i ∝ 1/s_i:
//
//	T = totalFlops / Σ_i (1/s_i),   F_i = T/s_i.
//
// Any other split must give some processor more than F_i and therefore a
// later finish, so this is optimal.
func PartitionFlops(procs []Proc, totalFlops float64) (Partition, error) {
	if len(procs) == 0 {
		return Partition{}, fmt.Errorf("hetero: empty ensemble")
	}
	if totalFlops <= 0 {
		return Partition{}, fmt.Errorf("hetero: non-positive work %g", totalFlops)
	}
	invSum := 0.0
	for i, p := range procs {
		s := p.effSecondsPerFlop()
		if s <= 0 || p.MemWords <= 0 || p.MaxMsgWords <= 0 {
			return Partition{}, fmt.Errorf("hetero: processor %d (%s) has invalid parameters", i, p.Name)
		}
		invSum += 1 / s
	}
	T := totalFlops / invSum
	part := Partition{Shares: make([]float64, len(procs)), Time: T}
	for i, p := range procs {
		part.Shares[i] = T / p.effSecondsPerFlop()
	}
	part.Energy = EnsembleEnergy(procs, part.Shares, T)
	return part, nil
}

// EnsembleEnergy sums Eq. 2 with per-processor parameters: each processor
// pays for its own flops and words, and holds its memory powered and its
// circuits leaking for the full runtime T (it cannot sleep while peers
// finish — the conservative assumption matching the paper's model).
func EnsembleEnergy(procs []Proc, shares []float64, T float64) float64 {
	e := 0.0
	for i, p := range procs {
		f := shares[i]
		e += p.effJoulesPerFlop()*f + p.DeltaE*p.MemWords*T + p.EpsilonE*T
	}
	return e
}

// BestSubset searches the energy-minimizing sub-ensemble for totalFlops of
// work, optionally under a deadline (tMax = 0 means none). Processors are
// ordered by effective speed and prefixes of that order are evaluated — the
// exchange argument for this model: if a processor is worth including, so
// is every faster one, because a faster processor strictly reduces T (every
// static term) while adding at most the same static cost. Returns the
// chosen processors (by index into procs) and the partition.
func BestSubset(procs []Proc, totalFlops, tMax float64) ([]int, Partition, error) {
	if len(procs) == 0 {
		return nil, Partition{}, fmt.Errorf("hetero: empty ensemble")
	}
	order := make([]int, len(procs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return procs[order[a]].effSecondsPerFlop() < procs[order[b]].effSecondsPerFlop()
	})
	bestIdx := []int(nil)
	var best Partition
	found := false
	for k := 1; k <= len(order); k++ {
		subset := order[:k]
		sub := make([]Proc, k)
		for i, idx := range subset {
			sub[i] = procs[idx]
		}
		part, err := PartitionFlops(sub, totalFlops)
		if err != nil {
			return nil, Partition{}, err
		}
		if tMax > 0 && part.Time > tMax {
			continue
		}
		// Prefer the larger ensemble on energy ties: homogeneous additions
		// inside a perfect-scaling region cost *no additional energy* (the
		// paper's theorem), so take the speed.
		if !found || part.Energy < best.Energy*(1+1e-12) {
			found = true
			best = part
			bestIdx = append([]int(nil), subset...)
		}
	}
	if !found {
		return nil, Partition{}, fmt.Errorf("hetero: no subset meets the deadline %g", tMax)
	}
	return bestIdx, best, nil
}

// FromDevice converts a Table II device into an ensemble member, pairing
// its derived compute parameters with the given link and memory
// characteristics (the survey says nothing about interconnects).
func FromDevice(d machine.DeviceSpec, betaT, alphaT, betaE, alphaE, deltaE, epsilonE, memWords, maxMsg float64) Proc {
	return Proc{
		Name:   d.Name,
		GammaT: d.GammaT(), BetaT: betaT, AlphaT: alphaT,
		GammaE: d.GammaE(), BetaE: betaE, AlphaE: alphaE,
		DeltaE: deltaE, EpsilonE: epsilonE,
		MemWords: memWords, MaxMsgWords: maxMsg,
	}
}
