// Package machine defines the architectural parameter sets used by the
// energy and runtime models of Demmel, Gearhart, Lipshitz and Schwartz,
// "Perfect Strong Scaling Using No Additional Energy" (IPDPS 2013).
//
// A Params value corresponds to the distributed machine of the paper's
// Figure 1(b): homogeneous processors connected by a network whose
// per-message and per-word costs stay constant as the machine scales.
// TwoLevel corresponds to the node+core machine of Figure 2.
package machine

import (
	"errors"
	"fmt"
	"math"
)

// Params holds the per-processor timing and energy parameters of the
// single-level distributed machine model.
//
// The paper's runtime model (Eq. 1) is
//
//	T = γt·F + βt·W + αt·S
//
// and its energy model (Eq. 2) is
//
//	E = p·(γe·F + βe·W + αe·S + δe·M·T + εe·T)
//
// where F, W and S are the flops, words sent and messages sent by one
// processor, M is the memory used per processor (in words) and T the total
// runtime.
type Params struct {
	// Name identifies the parameter set (e.g. "jaketown").
	Name string

	// GammaT is the time per flop γt in seconds.
	GammaT float64
	// BetaT is the time per word transferred βt in seconds (reciprocal
	// bandwidth).
	BetaT float64
	// AlphaT is the time per message αt in seconds (latency).
	AlphaT float64

	// GammaE is the energy per flop γe in joules.
	GammaE float64
	// BetaE is the energy per word transferred βe in joules.
	BetaE float64
	// AlphaE is the energy per message αe in joules.
	AlphaE float64
	// DeltaE is the energy per stored word per second δe in joules; the
	// model charges δe·M·T per processor for keeping M words powered for
	// the duration of the run.
	DeltaE float64
	// EpsilonE is the leakage energy per second εe in joules for everything
	// outside the memory (static circuit leakage, disks, fans, ...).
	EpsilonE float64

	// MemWords is M, the maximum usable memory per processor in words.
	MemWords float64
	// MaxMsgWords is m, the largest message the network accepts, in words
	// (m ≤ M).
	MaxMsgWords float64
}

// EnergyField selects one of the energy parameters for scaling studies
// (Section VI of the paper scales γe, βe and δe across process generations).
type EnergyField int

// Energy parameter selectors.
const (
	FieldGammaE EnergyField = iota
	FieldBetaE
	FieldAlphaE
	FieldDeltaE
	FieldEpsilonE
)

// String returns the conventional symbol for the field.
func (f EnergyField) String() string {
	switch f {
	case FieldGammaE:
		return "gamma_e"
	case FieldBetaE:
		return "beta_e"
	case FieldAlphaE:
		return "alpha_e"
	case FieldDeltaE:
		return "delta_e"
	case FieldEpsilonE:
		return "epsilon_e"
	}
	return fmt.Sprintf("EnergyField(%d)", int(f))
}

// Validate reports whether the parameter set is physically meaningful:
// all rates non-negative, γt strictly positive (a machine must be able to
// compute), and m ≤ M when both are set.
func (p Params) Validate() error {
	var errs []error
	if p.GammaT <= 0 {
		errs = append(errs, fmt.Errorf("gamma_t must be positive, got %g", p.GammaT))
	}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"beta_t", p.BetaT}, {"alpha_t", p.AlphaT},
		{"gamma_e", p.GammaE}, {"beta_e", p.BetaE}, {"alpha_e", p.AlphaE},
		{"delta_e", p.DeltaE}, {"epsilon_e", p.EpsilonE},
	} {
		if c.v < 0 || math.IsNaN(c.v) || math.IsInf(c.v, 0) {
			errs = append(errs, fmt.Errorf("%s must be finite and non-negative, got %g", c.name, c.v))
		}
	}
	if p.MemWords <= 0 {
		errs = append(errs, fmt.Errorf("memory M must be positive, got %g", p.MemWords))
	}
	if p.MaxMsgWords <= 0 {
		errs = append(errs, fmt.Errorf("max message m must be positive, got %g", p.MaxMsgWords))
	}
	if p.MaxMsgWords > p.MemWords {
		errs = append(errs, fmt.Errorf("max message m = %g exceeds memory M = %g", p.MaxMsgWords, p.MemWords))
	}
	return errors.Join(errs...)
}

// Clone returns a copy of the parameter set.
func (p Params) Clone() Params { return p }

// ScaleEnergy returns a copy with the selected energy parameters multiplied
// by factor. It is the primitive behind the paper's Figure 6 (scale one
// parameter per process generation) and Figure 7 (scale several together).
func (p Params) ScaleEnergy(factor float64, fields ...EnergyField) Params {
	q := p
	for _, f := range fields {
		switch f {
		case FieldGammaE:
			q.GammaE *= factor
		case FieldBetaE:
			q.BetaE *= factor
		case FieldAlphaE:
			q.AlphaE *= factor
		case FieldDeltaE:
			q.DeltaE *= factor
		case FieldEpsilonE:
			q.EpsilonE *= factor
		}
	}
	return q
}

// AfterGenerations returns a copy with the selected energy parameters halved
// once per generation, the paper's "parameters reduce by half with each
// generation" assumption.
func (p Params) AfterGenerations(generations int, fields ...EnergyField) Params {
	if generations < 0 {
		generations = 0
	}
	return p.ScaleEnergy(math.Pow(0.5, float64(generations)), fields...)
}

// CommEnergyPerWord returns the effective energy cost of moving one word,
// including latency amortized over maximal messages and the leakage paid
// during the transfer:
//
//	B = (βe + βt·εe) + (αe + αt·εe)/m
//
// This combination appears in every bandwidth term of the paper's energy
// expressions (Eqs. 10, 13, 16).
func (p Params) CommEnergyPerWord() float64 {
	return p.BetaE + p.BetaT*p.EpsilonE + (p.AlphaE+p.AlphaT*p.EpsilonE)/p.MaxMsgWords
}

// CommTimePerWord returns the effective time to move one word with latency
// amortized over maximal messages: βt + αt/m.
func (p Params) CommTimePerWord() float64 {
	return p.BetaT + p.AlphaT/p.MaxMsgWords
}

// FlopEnergy returns the effective energy per flop including leakage paid
// while computing: γe + γt·εe.
func (p Params) FlopEnergy() float64 {
	return p.GammaE + p.GammaT*p.EpsilonE
}

// PeakFlops returns the peak flop rate 1/γt in flop/s.
func (p Params) PeakFlops() float64 { return 1 / p.GammaT }

// PeakEfficiencyGFLOPSPerWatt returns the compute-only efficiency
// 1/γe expressed in GFLOPS/W, the headline metric of Section VI. It ignores
// communication and memory energy; full-algorithm efficiencies come from the
// core cost models.
func (p Params) PeakEfficiencyGFLOPSPerWatt() float64 {
	if p.GammaE == 0 {
		return math.Inf(1)
	}
	return 1 / p.GammaE / 1e9
}

// String summarizes the parameter set.
func (p Params) String() string {
	return fmt.Sprintf("machine %q: γt=%.4g βt=%.4g αt=%.4g | γe=%.4g βe=%.4g αe=%.4g δe=%.4g εe=%.4g | M=%.4g m=%.4g",
		p.Name, p.GammaT, p.BetaT, p.AlphaT,
		p.GammaE, p.BetaE, p.AlphaE, p.DeltaE, p.EpsilonE,
		p.MemWords, p.MaxMsgWords)
}

// TwoLevel holds the parameters of the paper's Figure 2 machine: pn nodes,
// each with pl cores; an inter-node network (superscript n) and an
// intra-node network (superscript l). The flop and leakage parameters are
// shared with the single-level model.
type TwoLevel struct {
	Name string

	// GammaT and GammaE are the per-flop time and energy of one core.
	GammaT float64
	GammaE float64
	// EpsilonE is the per-second leakage per core.
	EpsilonE float64

	// Inter-node link: time and energy per word and per message, node
	// memory size (words), node memory energy per word per second.
	BetaTN  float64
	AlphaTN float64
	BetaEN  float64
	AlphaEN float64
	MemN    float64
	DeltaEN float64
	// MaxMsgN is the inter-node maximum message size in words.
	MaxMsgN float64

	// Intra-node link: analogous parameters for core-to-core transfers,
	// core-local memory size and its energy.
	BetaTL  float64
	AlphaTL float64
	BetaEL  float64
	AlphaEL float64
	MemL    float64
	DeltaEL float64
	// MaxMsgL is the intra-node maximum message size in words.
	MaxMsgL float64
}

// Validate reports whether the two-level parameter set is meaningful.
func (t TwoLevel) Validate() error {
	var errs []error
	if t.GammaT <= 0 {
		errs = append(errs, fmt.Errorf("gamma_t must be positive, got %g", t.GammaT))
	}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"gamma_e", t.GammaE}, {"epsilon_e", t.EpsilonE},
		{"beta_t^n", t.BetaTN}, {"alpha_t^n", t.AlphaTN},
		{"beta_e^n", t.BetaEN}, {"alpha_e^n", t.AlphaEN}, {"delta_e^n", t.DeltaEN},
		{"beta_t^l", t.BetaTL}, {"alpha_t^l", t.AlphaTL},
		{"beta_e^l", t.BetaEL}, {"alpha_e^l", t.AlphaEL}, {"delta_e^l", t.DeltaEL},
	} {
		if c.v < 0 || math.IsNaN(c.v) || math.IsInf(c.v, 0) {
			errs = append(errs, fmt.Errorf("%s must be finite and non-negative, got %g", c.name, c.v))
		}
	}
	if t.MemN <= 0 || t.MemL <= 0 {
		errs = append(errs, fmt.Errorf("memories must be positive, got Mn=%g Ml=%g", t.MemN, t.MemL))
	}
	if t.MaxMsgN <= 0 || t.MaxMsgL <= 0 {
		errs = append(errs, fmt.Errorf("max messages must be positive, got mn=%g ml=%g", t.MaxMsgN, t.MaxMsgL))
	}
	return errors.Join(errs...)
}

// EffBetaTN returns the inter-node per-word time with latency folded in via
// the paper's substitution β ← β + α/m.
func (t TwoLevel) EffBetaTN() float64 { return t.BetaTN + t.AlphaTN/t.MaxMsgN }

// EffBetaTL returns the intra-node per-word time with latency folded in.
func (t TwoLevel) EffBetaTL() float64 { return t.BetaTL + t.AlphaTL/t.MaxMsgL }

// EffBetaEN returns the inter-node per-word energy with latency folded in.
func (t TwoLevel) EffBetaEN() float64 { return t.BetaEN + t.AlphaEN/t.MaxMsgN }

// EffBetaEL returns the intra-node per-word energy with latency folded in.
func (t TwoLevel) EffBetaEL() float64 { return t.BetaEL + t.AlphaEL/t.MaxMsgL }
