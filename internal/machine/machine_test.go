package machine

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

func TestJaketownValidates(t *testing.T) {
	p := Jaketown()
	if err := p.Validate(); err != nil {
		t.Fatalf("Jaketown preset should validate: %v", err)
	}
}

func TestIllustrativeValidates(t *testing.T) {
	p := Illustrative()
	if err := p.Validate(); err != nil {
		t.Fatalf("Illustrative preset should validate: %v", err)
	}
}

func TestSimDefaultValidates(t *testing.T) {
	p := SimDefault()
	if err := p.Validate(); err != nil {
		t.Fatalf("SimDefault preset should validate: %v", err)
	}
}

func TestJaketownTwoLevelValidates(t *testing.T) {
	tl := JaketownTwoLevel()
	if err := tl.Validate(); err != nil {
		t.Fatalf("JaketownTwoLevel preset should validate: %v", err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero gamma_t", func(p *Params) { p.GammaT = 0 }},
		{"negative gamma_t", func(p *Params) { p.GammaT = -1 }},
		{"negative beta_t", func(p *Params) { p.BetaT = -1e-9 }},
		{"negative alpha_t", func(p *Params) { p.AlphaT = -1e-6 }},
		{"negative gamma_e", func(p *Params) { p.GammaE = -1 }},
		{"negative beta_e", func(p *Params) { p.BetaE = -1 }},
		{"negative alpha_e", func(p *Params) { p.AlphaE = -1 }},
		{"negative delta_e", func(p *Params) { p.DeltaE = -1 }},
		{"negative epsilon_e", func(p *Params) { p.EpsilonE = -1 }},
		{"NaN beta_t", func(p *Params) { p.BetaT = math.NaN() }},
		{"Inf delta_e", func(p *Params) { p.DeltaE = math.Inf(1) }},
		{"zero memory", func(p *Params) { p.MemWords = 0 }},
		{"zero max msg", func(p *Params) { p.MaxMsgWords = 0 }},
		{"msg exceeds memory", func(p *Params) { p.MaxMsgWords = p.MemWords * 2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := Jaketown()
			tc.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Fatalf("Validate should reject %s", tc.name)
			}
		})
	}
}

func TestTwoLevelValidateRejectsBadParams(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*TwoLevel)
	}{
		{"zero gamma_t", func(p *TwoLevel) { p.GammaT = 0 }},
		{"negative beta_t^n", func(p *TwoLevel) { p.BetaTN = -1 }},
		{"negative beta_e^l", func(p *TwoLevel) { p.BetaEL = -1 }},
		{"zero node memory", func(p *TwoLevel) { p.MemN = 0 }},
		{"zero core memory", func(p *TwoLevel) { p.MemL = 0 }},
		{"zero node msg", func(p *TwoLevel) { p.MaxMsgN = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tl := JaketownTwoLevel()
			tc.mutate(&tl)
			if err := tl.Validate(); err == nil {
				t.Fatalf("Validate should reject %s", tc.name)
			}
		})
	}
}

func TestScaleEnergySingleField(t *testing.T) {
	base := Jaketown()
	scaled := base.ScaleEnergy(0.5, FieldGammaE)
	if scaled.GammaE != base.GammaE/2 {
		t.Errorf("gamma_e not halved: got %g want %g", scaled.GammaE, base.GammaE/2)
	}
	if scaled.BetaE != base.BetaE || scaled.DeltaE != base.DeltaE {
		t.Error("ScaleEnergy(FieldGammaE) must not touch other fields")
	}
	// Original untouched.
	if base.GammaE != Jaketown().GammaE {
		t.Error("ScaleEnergy must not mutate the receiver")
	}
}

func TestScaleEnergyAllFields(t *testing.T) {
	base := SimDefault()
	scaled := base.ScaleEnergy(0.25, FieldGammaE, FieldBetaE, FieldAlphaE, FieldDeltaE, FieldEpsilonE)
	checks := []struct {
		name      string
		got, want float64
	}{
		{"gamma_e", scaled.GammaE, base.GammaE / 4},
		{"beta_e", scaled.BetaE, base.BetaE / 4},
		{"alpha_e", scaled.AlphaE, base.AlphaE / 4},
		{"delta_e", scaled.DeltaE, base.DeltaE / 4},
		{"epsilon_e", scaled.EpsilonE, base.EpsilonE / 4},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s: got %g want %g", c.name, c.got, c.want)
		}
	}
	if scaled.GammaT != base.GammaT || scaled.BetaT != base.BetaT {
		t.Error("ScaleEnergy must not touch timing parameters")
	}
}

func TestAfterGenerations(t *testing.T) {
	base := Jaketown()
	g3 := base.AfterGenerations(3, FieldGammaE)
	if relErr(g3.GammaE, base.GammaE/8) > 1e-15 {
		t.Errorf("3 generations should divide gamma_e by 8: got %g want %g", g3.GammaE, base.GammaE/8)
	}
	g0 := base.AfterGenerations(0, FieldGammaE)
	if g0.GammaE != base.GammaE {
		t.Error("0 generations must be identity")
	}
	neg := base.AfterGenerations(-5, FieldGammaE)
	if neg.GammaE != base.GammaE {
		t.Error("negative generations must clamp to identity")
	}
}

func TestCommEnergyPerWord(t *testing.T) {
	p := Params{
		GammaT: 1, BetaT: 2, AlphaT: 3,
		GammaE: 4, BetaE: 5, AlphaE: 6,
		DeltaE: 7, EpsilonE: 8,
		MemWords: 100, MaxMsgWords: 10,
	}
	// B = (βe + βt·εe) + (αe + αt·εe)/m = (5 + 16) + (6 + 24)/10 = 24
	if got := p.CommEnergyPerWord(); relErr(got, 24) > 1e-15 {
		t.Errorf("CommEnergyPerWord: got %g want 24", got)
	}
	// βt + αt/m = 2 + 0.3
	if got := p.CommTimePerWord(); relErr(got, 2.3) > 1e-15 {
		t.Errorf("CommTimePerWord: got %g want 2.3", got)
	}
	// γe + γt·εe = 4 + 8
	if got := p.FlopEnergy(); relErr(got, 12) > 1e-15 {
		t.Errorf("FlopEnergy: got %g want 12", got)
	}
}

func TestPeakHelpers(t *testing.T) {
	p := Jaketown()
	if got := p.PeakFlops(); relErr(got, 396.8e9) > 1e-3 {
		t.Errorf("PeakFlops: got %g want ~396.8e9", got)
	}
	if got := p.PeakEfficiencyGFLOPSPerWatt(); relErr(got, 2.645) > 1e-3 {
		t.Errorf("peak efficiency: got %g want ~2.645", got)
	}
	zero := p
	zero.GammaE = 0
	if !math.IsInf(zero.PeakEfficiencyGFLOPSPerWatt(), 1) {
		t.Error("zero gamma_e should give infinite peak efficiency")
	}
}

func TestEnergyFieldString(t *testing.T) {
	want := map[EnergyField]string{
		FieldGammaE:   "gamma_e",
		FieldBetaE:    "beta_e",
		FieldAlphaE:   "alpha_e",
		FieldDeltaE:   "delta_e",
		FieldEpsilonE: "epsilon_e",
	}
	for f, s := range want {
		if f.String() != s {
			t.Errorf("String(%d): got %q want %q", int(f), f.String(), s)
		}
	}
	if got := EnergyField(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown field should include its value, got %q", got)
	}
}

func TestParamsStringMentionsName(t *testing.T) {
	p := Jaketown()
	if s := p.String(); !strings.Contains(s, "jaketown") {
		t.Errorf("String should mention machine name, got %q", s)
	}
}

func TestJaketownDerivations(t *testing.T) {
	raw := JaketownSpec()
	p := Jaketown()
	if relErr(raw.DerivedGammaT(), p.GammaT) > 1e-3 {
		t.Errorf("derived gamma_t %g disagrees with table value %g", raw.DerivedGammaT(), p.GammaT)
	}
	if relErr(raw.DerivedGammaE(), p.GammaE) > 1e-3 {
		t.Errorf("derived gamma_e %g disagrees with table value %g", raw.DerivedGammaE(), p.GammaE)
	}
	if relErr(raw.DerivedBetaT(), p.BetaT) > 1e-2 {
		t.Errorf("derived beta_t %g disagrees with table value %g", raw.DerivedBetaT(), p.BetaT)
	}
	// Peak = freq*cores*SIMD*2.
	peak := raw.CoreFreqGHz * float64(raw.Cores) * float64(raw.SIMDWidth) * 2
	if relErr(peak, raw.PeakGFLOPS) > 1e-6 {
		t.Errorf("peak recomputation: got %g want %g", peak, raw.PeakGFLOPS)
	}
}

// TestTableIIDerivedColumns is experiment E14: recompute every derived
// column of Table II from the raw specs and compare with the printed
// values. The paper prints 3 significant digits, so we allow 1% (plus one
// row, the 2GHz A9, where the printed efficiency rounds from 8/1.9).
func TestTableIIDerivedColumns(t *testing.T) {
	for _, d := range TableIIDevices() {
		t.Run(d.Name, func(t *testing.T) {
			if relErr(d.PeakGFLOPS(), d.PaperPeakGFLOPS) > 1e-3 {
				t.Errorf("peak: got %.4g want %.4g", d.PeakGFLOPS(), d.PaperPeakGFLOPS)
			}
			if relErr(d.GammaT(), d.PaperGammaT) > 0.01 {
				t.Errorf("gamma_t: got %.4g want %.4g", d.GammaT(), d.PaperGammaT)
			}
			if relErr(d.GammaE(), d.PaperGammaE) > 0.01 {
				t.Errorf("gamma_e: got %.4g want %.4g", d.GammaE(), d.PaperGammaE)
			}
			if relErr(d.GFLOPSPerWatt(), d.PaperGFLOPSPerW) > 0.01 {
				t.Errorf("GFLOPS/W: got %.4g want %.4g", d.GFLOPSPerWatt(), d.PaperGFLOPSPerW)
			}
		})
	}
}

func TestTableIINoneReachTenGFLOPSPerWatt(t *testing.T) {
	// Section VII's observation: no surveyed device approaches 10 GFLOPS/W.
	for _, d := range TableIIDevices() {
		if d.GFLOPSPerWatt() >= 10 {
			t.Errorf("%s: %g GFLOPS/W contradicts the paper's observation", d.Name, d.GFLOPSPerWatt())
		}
	}
}

func TestDeviceParamsConversion(t *testing.T) {
	d := TableIIDevices()[0]
	p := d.Params(1e-9, 1e-6, 2e-9, 0, 1e-10, 0, 1<<30, 1<<20)
	if err := p.Validate(); err != nil {
		t.Fatalf("converted params should validate: %v", err)
	}
	if relErr(p.GammaT, d.GammaT()) > 1e-15 || relErr(p.GammaE, d.GammaE()) > 1e-15 {
		t.Error("Params must carry the device's derived compute parameters")
	}
	if p.Name != d.Name {
		t.Errorf("Params name: got %q want %q", p.Name, d.Name)
	}
}

// Property: ScaleEnergy composes multiplicatively and never touches timing.
func TestScaleEnergyProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		fa := 0.5 + float64(a)/256 // factors in [0.5, 1.5)
		fb := 0.5 + float64(b)/256
		base := SimDefault()
		twice := base.ScaleEnergy(fa, FieldBetaE).ScaleEnergy(fb, FieldBetaE)
		once := base.ScaleEnergy(fa*fb, FieldBetaE)
		return relErr(twice.BetaE, once.BetaE) < 1e-12 &&
			twice.BetaT == base.BetaT && twice.GammaT == base.GammaT
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: AfterGenerations is monotone decreasing in generations for any
// selected field.
func TestAfterGenerationsMonotone(t *testing.T) {
	base := Jaketown()
	prev := math.Inf(1)
	for g := 0; g <= 10; g++ {
		cur := base.AfterGenerations(g, FieldGammaE).GammaE
		if cur >= prev {
			t.Fatalf("generation %d: gamma_e %g not below previous %g", g, cur, prev)
		}
		prev = cur
	}
}

func TestTwoLevelEffectiveBetas(t *testing.T) {
	tl := TwoLevel{
		GammaT: 1,
		BetaTN: 2, AlphaTN: 10, MaxMsgN: 5,
		BetaTL: 1, AlphaTL: 4, MaxMsgL: 2,
		BetaEN: 3, AlphaEN: 15,
		BetaEL: 2, AlphaEL: 6,
		MemN: 10, MemL: 5,
	}
	if got := tl.EffBetaTN(); relErr(got, 4) > 1e-15 { // 2 + 10/5
		t.Errorf("EffBetaTN: got %g want 4", got)
	}
	if got := tl.EffBetaTL(); relErr(got, 3) > 1e-15 { // 1 + 4/2
		t.Errorf("EffBetaTL: got %g want 3", got)
	}
	if got := tl.EffBetaEN(); relErr(got, 6) > 1e-15 { // 3 + 15/5
		t.Errorf("EffBetaEN: got %g want 6", got)
	}
	if got := tl.EffBetaEL(); relErr(got, 5) > 1e-15 { // 2 + 6/2
		t.Errorf("EffBetaEL: got %g want 5", got)
	}
}
