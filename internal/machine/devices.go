package machine

// DeviceSpec is one row of the paper's Table II: a processing device
// described by the raw characteristics from which the paper derives its
// peak throughput, γt, γe and GFLOPS/W columns.
//
// Peak single-precision throughput is
//
//	freq × cores × SIMD × issue  (+ the same product for an on-package GPU)
//
// where issue is the number of vector operations retired per cycle (2 for
// the x86 and NVIDIA devices, which co-issue a multiply and an add; 1 for
// the ARM cores). The Ivy Bridge rows fold in the on-package HD 4000 GPU
// (0.65 GHz × 16 EUs × 8 lanes), matching the parenthesized entries of the
// printed table.
type DeviceSpec struct {
	Name     string
	FreqGHz  float64
	Cores    int
	SIMD     int
	Issue    int // vector ops per cycle (mul+add dual issue = 2)
	TDPWatts float64

	// Optional on-package GPU (Ivy Bridge rows).
	GPUFreqGHz float64
	GPUCores   int
	GPUSIMD    int
	GPUIssue   int

	// Columns as printed in Table II, used to validate our derivations.
	PaperPeakGFLOPS float64
	PaperGammaT     float64 // s/flop
	PaperGammaE     float64 // J/flop
	PaperGFLOPSPerW float64
}

// PeakGFLOPS recomputes the peak single-precision throughput column.
func (d DeviceSpec) PeakGFLOPS() float64 {
	peak := d.FreqGHz * float64(d.Cores) * float64(d.SIMD) * float64(d.Issue)
	if d.GPUCores > 0 {
		peak += d.GPUFreqGHz * float64(d.GPUCores) * float64(d.GPUSIMD) * float64(d.GPUIssue)
	}
	return peak
}

// GammaT recomputes the seconds-per-flop column: 1/peak.
func (d DeviceSpec) GammaT() float64 { return 1 / (d.PeakGFLOPS() * 1e9) }

// GammaE recomputes the joules-per-flop column: TDP/peak.
func (d DeviceSpec) GammaE() float64 { return d.TDPWatts / (d.PeakGFLOPS() * 1e9) }

// GFLOPSPerWatt recomputes the efficiency column: peak/TDP.
func (d DeviceSpec) GFLOPSPerWatt() float64 { return d.PeakGFLOPS() / d.TDPWatts }

// Params converts the device into a single-level machine parameter set with
// only the compute parameters populated (Table II says nothing about the
// devices' interconnects); memory is set to memWords and communication
// parameters to the provided link characteristics.
func (d DeviceSpec) Params(betaT, alphaT, betaE, alphaE, deltaE, epsilonE, memWords, maxMsg float64) Params {
	return Params{
		Name:        d.Name,
		GammaT:      d.GammaT(),
		BetaT:       betaT,
		AlphaT:      alphaT,
		GammaE:      d.GammaE(),
		BetaE:       betaE,
		AlphaE:      alphaE,
		DeltaE:      deltaE,
		EpsilonE:    epsilonE,
		MemWords:    memWords,
		MaxMsgWords: maxMsg,
	}
}

// TableIIDevices returns every row of the paper's Table II.
func TableIIDevices() []DeviceSpec {
	return []DeviceSpec{
		{
			Name: "Intel Sandy Bridge 2687W", FreqGHz: 3.1, Cores: 8, SIMD: 8, Issue: 2, TDPWatts: 150,
			PaperPeakGFLOPS: 396.80, PaperGammaT: 2.52e-12, PaperGammaE: 3.78e-10, PaperGFLOPSPerW: 2.645,
		},
		{
			Name: "Intel Ivy Bridge 3770K", FreqGHz: 3.5, Cores: 4, SIMD: 8, Issue: 2, TDPWatts: 77,
			GPUFreqGHz: 0.65, GPUCores: 16, GPUSIMD: 8, GPUIssue: 1,
			PaperPeakGFLOPS: 307.20, PaperGammaT: 3.26e-12, PaperGammaE: 2.51e-10, PaperGFLOPSPerW: 3.990,
		},
		{
			Name: "Intel Ivy Bridge 3770T", FreqGHz: 2.5, Cores: 4, SIMD: 8, Issue: 2, TDPWatts: 45,
			GPUFreqGHz: 0.65, GPUCores: 16, GPUSIMD: 8, GPUIssue: 1,
			PaperPeakGFLOPS: 243.20, PaperGammaT: 4.11e-12, PaperGammaE: 1.85e-10, PaperGFLOPSPerW: 5.404,
		},
		{
			Name: "Intel Westmere-EX E7-8870", FreqGHz: 2.4, Cores: 10, SIMD: 4, Issue: 2, TDPWatts: 130,
			PaperPeakGFLOPS: 192.00, PaperGammaT: 5.21e-12, PaperGammaE: 6.77e-10, PaperGFLOPSPerW: 1.477,
		},
		{
			Name: "Intel Beckton X7560", FreqGHz: 2.26, Cores: 8, SIMD: 4, Issue: 2, TDPWatts: 130,
			PaperPeakGFLOPS: 144.64, PaperGammaT: 6.91e-12, PaperGammaE: 8.99e-10, PaperGFLOPSPerW: 1.113,
		},
		{
			Name: "Intel Atom D2500", FreqGHz: 1.86, Cores: 2, SIMD: 4, Issue: 2, TDPWatts: 10,
			PaperPeakGFLOPS: 29.76, PaperGammaT: 3.36e-11, PaperGammaE: 3.36e-10, PaperGFLOPSPerW: 2.976,
		},
		{
			Name: "Intel Atom N2800", FreqGHz: 1.86, Cores: 2, SIMD: 4, Issue: 2, TDPWatts: 6.5,
			PaperPeakGFLOPS: 29.76, PaperGammaT: 3.36e-11, PaperGammaE: 2.18e-10, PaperGFLOPSPerW: 4.578,
		},
		{
			Name: "Nvidia GTX480", FreqGHz: 1.401, Cores: 480, SIMD: 1, Issue: 2, TDPWatts: 250,
			PaperPeakGFLOPS: 1344.96, PaperGammaT: 7.44e-13, PaperGammaE: 1.86e-10, PaperGFLOPSPerW: 5.380,
		},
		{
			Name: "Nvidia GTX590", FreqGHz: 1.215, Cores: 1024, SIMD: 1, Issue: 2, TDPWatts: 365,
			PaperPeakGFLOPS: 2488.32, PaperGammaT: 4.02e-13, PaperGammaE: 1.47e-10, PaperGFLOPSPerW: 6.817,
		},
		{
			Name: "ARM Cortex A9 (2.0GHz)", FreqGHz: 2.0, Cores: 2, SIMD: 2, Issue: 1, TDPWatts: 1.9,
			PaperPeakGFLOPS: 8.00, PaperGammaT: 1.25e-10, PaperGammaE: 2.38e-10, PaperGFLOPSPerW: 4.211,
		},
		{
			Name: "ARM Cortex A9 (0.8GHz)", FreqGHz: 0.8, Cores: 2, SIMD: 2, Issue: 1, TDPWatts: 0.5,
			PaperPeakGFLOPS: 3.20, PaperGammaT: 3.13e-10, PaperGammaE: 1.56e-10, PaperGFLOPSPerW: 6.400,
		},
	}
}
