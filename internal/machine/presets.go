package machine

import "fmt"

// Jaketown returns the Table I parameter set of the paper's Section VI case
// study: one socket of a dual-socket Intel Sandy Bridge-EP ("Jaketown")
// server. Values are encoded exactly as printed in Table I; see
// JaketownSpec for the raw hardware numbers they were derived from.
func Jaketown() Params {
	return Params{
		Name:        "jaketown",
		GammaT:      2.5202e-12, // s/flop: 1 / 396.8 GFLOP/s peak SP
		BetaT:       1.56e-10,   // s/word: 4 B words over the 25.6 GB/s QPI link
		AlphaT:      6.00e-8,    // s/msg: QPI link latency
		GammaE:      3.78024e-10,
		BetaE:       3.78024e-10,
		AlphaE:      0,
		DeltaE:      5.7742e-9,
		EpsilonE:    0, // the paper assumes zero leakage for the case study
		MemWords:    17179869184,
		MaxMsgWords: 17179869184,
	}
}

// JaketownRaw holds the raw machine characteristics of Table I from which
// the Jaketown model parameters derive.
type JaketownRaw struct {
	CoreFreqGHz    float64
	SIMDWidth      int // single-precision lanes
	DataWidthBytes int
	Cores          int
	PeakGFLOPS     float64
	ChipTDPWatts   float64
	LinkBWGBps     float64 // QPI bandwidth, gigabytes/s
	LinkLatencySec float64
	LinkActiveW    float64
	LinkIdleW      float64
	DIMMsPerSocket int
	DIMMPowerWatts float64
}

// JaketownSpec returns the raw Table I characteristics.
func JaketownSpec() JaketownRaw {
	return JaketownRaw{
		CoreFreqGHz:    3.1,
		SIMDWidth:      8,
		DataWidthBytes: 4,
		Cores:          8,
		PeakGFLOPS:     396.8,
		ChipTDPWatts:   150,
		LinkBWGBps:     25.60,
		LinkLatencySec: 6.0e-8,
		LinkActiveW:    2.15,
		LinkIdleW:      0,
		DIMMsPerSocket: 8,
		DIMMPowerWatts: 3.1,
	}
}

// DerivedGammaT returns γt computed from the raw specs: the reciprocal of
// peak single-precision throughput, freq × cores × SIMD × 2 (fused
// multiply-and-add issue per cycle on Sandy Bridge's two vector ports).
func (r JaketownRaw) DerivedGammaT() float64 {
	return 1 / (r.CoreFreqGHz * 1e9 * float64(r.Cores) * float64(r.SIMDWidth) * 2)
}

// DerivedGammaE returns γe computed from the raw specs as TDP divided by
// peak flop rate — the paper's deliberately pessimistic choice.
func (r JaketownRaw) DerivedGammaE() float64 {
	return r.ChipTDPWatts / (r.PeakGFLOPS * 1e9)
}

// DerivedBetaT returns βt computed from the raw specs: one 4-byte word over
// the 25.6 GB/s QPI link.
func (r JaketownRaw) DerivedBetaT() float64 {
	return float64(r.DataWidthBytes) / (r.LinkBWGBps * 1e9)
}

// Illustrative returns the deliberately contrived parameter set used to
// draw Figure 4. The paper states those plots "use contrived parameters";
// this set is chosen so that, for IllustrativeN particles and f = 10, the
// minimum-energy memory is M0 = 2000 words, placing the green minimum-
// energy line of Figure 4 across p ∈ [n/M0, n²/M0²] = [5, 25] — partway
// through the plotted axis p ∈ [6, 100], as in the paper's rendering.
func Illustrative() Params {
	return Params{
		Name:        "illustrative",
		GammaT:      1e-9,
		BetaT:       1e-8,
		AlphaT:      1e-6,
		GammaE:      1e-12, // small flop energy so the M-dependent terms shape the plot
		BetaE:       2e-8,
		AlphaE:      1e-6,
		DeltaE:      5e-7,
		EpsilonE:    1e-3,
		MemWords:    1 << 30,
		MaxMsgWords: 1 << 20,
	}
}

// IllustrativeN is the n-body problem size paired with Illustrative for the
// Figure 4 reproductions.
const IllustrativeN = 1e4

// SimDefault returns a parameter set convenient for simulator experiments:
// round numbers, latency large enough that message counts matter, and
// leakage/memory energies small but nonzero so every model term exercises.
func SimDefault() Params {
	return Params{
		Name:        "simdefault",
		GammaT:      1e-9,
		BetaT:       4e-9,
		AlphaT:      1e-6,
		GammaE:      1e-9,
		BetaE:       4e-9,
		AlphaE:      1e-6,
		DeltaE:      1e-10,
		EpsilonE:    1e-2,
		MemWords:    1 << 28,
		MaxMsgWords: 1 << 24,
	}
}

// JaketownTwoLevel returns a two-level (Figure 2) view of the case-study
// server: 2 NUMA nodes joined by QPI, 8 cores per node sharing the on-die
// ring. The intra-node parameters are estimates consistent with Table I
// (ring bandwidth well above QPI, negligible intra-node latency energy);
// they exist to exercise Eqs. 12 and 17, not to model the die cycle-
// accurately.
func JaketownTwoLevel() TwoLevel {
	jk := Jaketown()
	return TwoLevel{
		Name:     "jaketown-2level",
		GammaT:   jk.GammaT * 8, // per core: 1/8 of socket throughput
		GammaE:   jk.GammaE,
		EpsilonE: 0,

		BetaTN:  jk.BetaT,
		AlphaTN: jk.AlphaT,
		BetaEN:  jk.BetaE,
		AlphaEN: 0,
		MemN:    jk.MemWords,
		DeltaEN: jk.DeltaE,
		MaxMsgN: jk.MaxMsgWords,

		BetaTL:  jk.BetaT / 8, // on-die ring: ~8x QPI bandwidth
		AlphaTL: jk.AlphaT / 10,
		BetaEL:  jk.BetaE / 10,
		AlphaEL: 0,
		MemL:    2.5 * 1024 * 1024 / 4, // 2.5 MiB LLC slice per core, 4 B words
		DeltaEL: jk.DeltaE / 10,
		MaxMsgL: 2.5 * 1024 * 1024 / 4,
	}
}

// ByName returns a named preset: "jaketown", "illustrative" or
// "simdefault". It is the lookup the command-line tools use.
func ByName(name string) (Params, error) {
	switch name {
	case "jaketown":
		return Jaketown(), nil
	case "illustrative":
		return Illustrative(), nil
	case "simdefault":
		return SimDefault(), nil
	}
	return Params{}, fmt.Errorf("machine: unknown preset %q (want jaketown, illustrative or simdefault)", name)
}
