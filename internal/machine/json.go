package machine

import (
	"encoding/json"
	"fmt"
	"os"
)

// paramsJSON is the on-disk schema for Params, using the paper's symbol
// names so files read like the model:
//
//	{
//	  "name": "mycluster",
//	  "gamma_t": 2.5e-12, "beta_t": 1.6e-10, "alpha_t": 6e-8,
//	  "gamma_e": 3.8e-10, "beta_e": 3.8e-10, "alpha_e": 0,
//	  "delta_e": 5.8e-9,  "epsilon_e": 0,
//	  "mem_words": 17179869184, "max_msg_words": 17179869184
//	}
type paramsJSON struct {
	Name        string  `json:"name"`
	GammaT      float64 `json:"gamma_t"`
	BetaT       float64 `json:"beta_t"`
	AlphaT      float64 `json:"alpha_t"`
	GammaE      float64 `json:"gamma_e"`
	BetaE       float64 `json:"beta_e"`
	AlphaE      float64 `json:"alpha_e"`
	DeltaE      float64 `json:"delta_e"`
	EpsilonE    float64 `json:"epsilon_e"`
	MemWords    float64 `json:"mem_words"`
	MaxMsgWords float64 `json:"max_msg_words"`
}

// MarshalJSON implements json.Marshaler with the symbol-named schema.
func (p Params) MarshalJSON() ([]byte, error) {
	return json.Marshal(paramsJSON{
		Name:   p.Name,
		GammaT: p.GammaT, BetaT: p.BetaT, AlphaT: p.AlphaT,
		GammaE: p.GammaE, BetaE: p.BetaE, AlphaE: p.AlphaE,
		DeltaE: p.DeltaE, EpsilonE: p.EpsilonE,
		MemWords: p.MemWords, MaxMsgWords: p.MaxMsgWords,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *Params) UnmarshalJSON(data []byte) error {
	var j paramsJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*p = Params{
		Name:   j.Name,
		GammaT: j.GammaT, BetaT: j.BetaT, AlphaT: j.AlphaT,
		GammaE: j.GammaE, BetaE: j.BetaE, AlphaE: j.AlphaE,
		DeltaE: j.DeltaE, EpsilonE: j.EpsilonE,
		MemWords: j.MemWords, MaxMsgWords: j.MaxMsgWords,
	}
	return nil
}

// LoadFile reads and validates a machine parameter set from a JSON file.
func LoadFile(path string) (Params, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Params{}, fmt.Errorf("machine: %w", err)
	}
	var p Params
	if err := json.Unmarshal(data, &p); err != nil {
		return Params{}, fmt.Errorf("machine: parsing %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return Params{}, fmt.Errorf("machine: %s: %w", path, err)
	}
	return p, nil
}

// SaveFile writes the parameter set to a JSON file.
func (p Params) SaveFile(path string) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return fmt.Errorf("machine: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Resolve returns a machine from either a preset name or, when the name
// ends in ".json", a parameter file — the lookup every command-line tool
// shares.
func Resolve(nameOrPath string) (Params, error) {
	if len(nameOrPath) > 5 && nameOrPath[len(nameOrPath)-5:] == ".json" {
		return LoadFile(nameOrPath)
	}
	return ByName(nameOrPath)
}
