package machine

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	orig := Jaketown()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"gamma_t"`) {
		t.Errorf("schema should use symbol names: %s", data)
	}
	var back Params
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != orig {
		t.Errorf("round trip changed params:\n%+v\n%+v", orig, back)
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "machine.json")
	orig := Illustrative()
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != orig {
		t.Error("file round trip changed params")
	}
}

func TestLoadFileValidates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	bad := Jaketown()
	bad.GammaT = -1
	data, err := json.Marshal(bad)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFile(path, data); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Error("invalid parameters should be rejected on load")
	}
}

func TestLoadFileErrors(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should error")
	}
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := writeFile(path, []byte("{not json")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Error("malformed JSON should error")
	}
}

func TestResolve(t *testing.T) {
	if p, err := Resolve("jaketown"); err != nil || p.Name != "jaketown" {
		t.Errorf("preset resolve failed: %v %v", p.Name, err)
	}
	path := filepath.Join(t.TempDir(), "m.json")
	if err := SimDefault().SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if p, err := Resolve(path); err != nil || p.Name != "simdefault" {
		t.Errorf("file resolve failed: %v %v", p.Name, err)
	}
	if _, err := Resolve("nonsense"); err == nil {
		t.Error("unknown preset should error")
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
