package matrix

import "testing"

func benchmarkMul(b *testing.B, n int) {
	x := Random(n, n, 1)
	y := Random(n, n, 2)
	b.SetBytes(int64(8 * n * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Mul(x, y)
	}
}

func BenchmarkMul64(b *testing.B)  { benchmarkMul(b, 64) }
func BenchmarkMul128(b *testing.B) { benchmarkMul(b, 128) }
func BenchmarkMul256(b *testing.B) { benchmarkMul(b, 256) }

func BenchmarkLU128(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a := RandomDiagDominant(128, int64(i))
		b.StartTimer()
		if err := LUInPlace(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCholesky128(b *testing.B) {
	src := RandomSPD(128, 1)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a := src.Clone()
		b.StartTimer()
		if err := CholeskyInPlace(a); err != nil {
			b.Fatal(err)
		}
	}
}
