package matrix

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	a := New(2, 3)
	if a.Rows != 2 || a.Cols != 3 || len(a.Data) != 6 {
		t.Fatalf("New(2,3): %+v", a)
	}
	a.Set(1, 2, 5)
	if a.At(1, 2) != 5 || a.Data[5] != 5 {
		t.Error("Set/At row-major layout broken")
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(-1, 2) should panic")
		}
	}()
	New(-1, 2)
}

func TestFromData(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5, 6}
	a := FromData(2, 3, d)
	if a.At(0, 2) != 3 || a.At(1, 0) != 4 {
		t.Error("FromData layout wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("FromData with wrong length should panic")
		}
	}()
	FromData(2, 2, d)
}

func TestCloneIndependence(t *testing.T) {
	a := Random(3, 3, 1)
	b := a.Clone()
	b.Set(0, 0, 999)
	if a.At(0, 0) == 999 {
		t.Error("Clone must copy data")
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(4, 4, 7)
	b := Random(4, 4, 7)
	if !a.Equalish(b, 0) {
		t.Error("same seed must produce the same matrix")
	}
	c := Random(4, 4, 8)
	if a.Equalish(c, 0) {
		t.Error("different seeds should differ")
	}
	for _, v := range a.Data {
		if v < -1 || v >= 1 {
			t.Errorf("entry %g outside [-1,1)", v)
		}
	}
}

func TestMulSmallKnown(t *testing.T) {
	a := FromData(2, 2, []float64{1, 2, 3, 4})
	b := FromData(2, 2, []float64{5, 6, 7, 8})
	c := Mul(a, b)
	want := FromData(2, 2, []float64{19, 22, 43, 50})
	if !c.Equalish(want, 1e-14) {
		t.Errorf("Mul: got %v want %v", c.Data, want.Data)
	}
}

func TestMulIdentity(t *testing.T) {
	a := Random(5, 5, 3)
	c := Mul(a, Identity(5))
	if !c.Equalish(a, 1e-14) {
		t.Error("A·I != A")
	}
	c = Mul(Identity(5), a)
	if !c.Equalish(a, 1e-14) {
		t.Error("I·A != A")
	}
}

func TestMulRectangular(t *testing.T) {
	a := Random(3, 7, 1)
	b := Random(7, 4, 2)
	c := Mul(a, b)
	if c.Rows != 3 || c.Cols != 4 {
		t.Fatalf("shape %dx%d", c.Rows, c.Cols)
	}
	// Check one element by hand.
	want := 0.0
	for k := 0; k < 7; k++ {
		want += a.At(2, k) * b.At(k, 3)
	}
	if math.Abs(c.At(2, 3)-want) > 1e-12 {
		t.Errorf("element (2,3): got %g want %g", c.At(2, 3), want)
	}
}

func TestMulBlockedMatchesNaive(t *testing.T) {
	// Exercise sizes around the 64-block boundary.
	for _, n := range []int{1, 63, 64, 65, 130} {
		a := Random(n, n, int64(n))
		b := Random(n, n, int64(n+1))
		c := Mul(a, b)
		naive := New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += a.At(i, k) * b.At(k, j)
				}
				naive.Set(i, j, s)
			}
		}
		if d := c.MaxAbsDiff(naive); d > 1e-10*float64(n) {
			t.Errorf("n=%d: blocked vs naive max diff %g", n, d)
		}
	}
}

func TestMulAddAccumulates(t *testing.T) {
	a := Random(4, 4, 1)
	b := Random(4, 4, 2)
	c := Random(4, 4, 3)
	orig := c.Clone()
	MulAdd(c, a, b)
	prod := Mul(a, b)
	for i := range c.Data {
		if math.Abs(c.Data[i]-orig.Data[i]-prod.Data[i]) > 1e-12 {
			t.Fatalf("MulAdd must accumulate, elem %d", i)
		}
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched Mul should panic")
		}
	}()
	Mul(New(2, 3), New(2, 3))
}

func TestMulFlops(t *testing.T) {
	if got := MulFlops(2, 3, 4); got != 48 {
		t.Errorf("MulFlops(2,3,4) = %g, want 48", got)
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromData(2, 2, []float64{1, 2, 3, 4})
	b := FromData(2, 2, []float64{10, 20, 30, 40})
	a.Add(b)
	if a.At(1, 1) != 44 {
		t.Errorf("Add: %v", a.Data)
	}
	a.Sub(b)
	if a.At(0, 0) != 1 {
		t.Errorf("Sub: %v", a.Data)
	}
	a.Scale(3)
	if a.At(0, 1) != 6 {
		t.Errorf("Scale: %v", a.Data)
	}
}

func TestAddShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched Add should panic")
		}
	}()
	New(2, 2).Add(New(3, 3))
}

func TestTranspose(t *testing.T) {
	a := FromData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := a.Transpose()
	if b.Rows != 3 || b.Cols != 2 || b.At(2, 1) != 6 || b.At(0, 1) != 4 {
		t.Errorf("Transpose: %+v", b)
	}
	c := b.Transpose()
	if !c.Equalish(a, 0) {
		t.Error("double transpose must be identity")
	}
}

func TestBlockRoundTrip(t *testing.T) {
	a := Random(6, 8, 5)
	blk := a.Block(2, 3, 3, 4)
	if blk.Rows != 3 || blk.Cols != 4 {
		t.Fatalf("block shape %dx%d", blk.Rows, blk.Cols)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if blk.At(i, j) != a.At(2+i, 3+j) {
				t.Fatalf("block element (%d,%d) wrong", i, j)
			}
		}
	}
	b := New(6, 8)
	b.SetBlock(2, 3, blk)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if b.At(2+i, 3+j) != blk.At(i, j) {
				t.Fatalf("SetBlock element (%d,%d) wrong", i, j)
			}
		}
	}
	if b.At(0, 0) != 0 {
		t.Error("SetBlock wrote outside the block")
	}
}

func TestBlockOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Block should panic")
		}
	}()
	New(3, 3).Block(2, 2, 2, 2)
}

func TestNorms(t *testing.T) {
	a := FromData(1, 3, []float64{3, -4, 0})
	if a.FrobeniusNorm() != 5 {
		t.Errorf("Frobenius: got %g", a.FrobeniusNorm())
	}
	if a.MaxAbs() != 4 {
		t.Errorf("MaxAbs: got %g", a.MaxAbs())
	}
	b := FromData(1, 3, []float64{3, -4, 2})
	if a.MaxAbsDiff(b) != 2 {
		t.Errorf("MaxAbsDiff: got %g", a.MaxAbsDiff(b))
	}
}

func TestLUReconstructs(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 33} {
		a := RandomDiagDominant(n, int64(n))
		orig := a.Clone()
		if err := LUInPlace(a); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		l, u := SplitLU(a)
		recon := Mul(l, u)
		if d := recon.MaxAbsDiff(orig); d > 1e-9*float64(n) {
			t.Errorf("n=%d: ||LU - A|| = %g", n, d)
		}
	}
}

func TestLUZeroPivot(t *testing.T) {
	a := New(2, 2) // all zeros
	if err := LUInPlace(a); err == nil {
		t.Error("zero pivot should be reported")
	}
}

func TestLUFlops(t *testing.T) {
	if got := LUFlops(3); math.Abs(got-18) > 1e-12 {
		t.Errorf("LUFlops(3) = %g, want 18", got)
	}
}

func TestTriSolveLowerUnit(t *testing.T) {
	n := 8
	a := RandomDiagDominant(n, 3)
	if err := LUInPlace(a); err != nil {
		t.Fatal(err)
	}
	l, _ := SplitLU(a)
	x := Random(n, 4, 9)
	b := Mul(l, x)
	TriSolveLowerUnit(l, b) // solves L·X = B in place
	if d := b.MaxAbsDiff(x); d > 1e-9 {
		t.Errorf("lower solve residual %g", d)
	}
}

func TestTriSolveUpperRight(t *testing.T) {
	n := 8
	a := RandomDiagDominant(n, 4)
	if err := LUInPlace(a); err != nil {
		t.Fatal(err)
	}
	_, u := SplitLU(a)
	x := Random(5, n, 11)
	b := Mul(x, u)
	TriSolveUpperRight(u, b) // solves X·U = B in place
	if d := b.MaxAbsDiff(x); d > 1e-9 {
		t.Errorf("upper-right solve residual %g", d)
	}
}

func TestTriSolveFlops(t *testing.T) {
	if got := TriSolveFlops(3, 2); got != 18 {
		t.Errorf("TriSolveFlops(3,2) = %g, want 18", got)
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ on random shapes.
func TestMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -(seed + 1)
		}
		m := int(seed%4) + 1
		k := int(seed%5) + 1
		n := int(seed%3) + 1
		a := Random(m, k, seed)
		b := Random(k, n, seed+1)
		lhs := Mul(a, b).Transpose()
		rhs := Mul(b.Transpose(), a.Transpose())
		return lhs.MaxAbsDiff(rhs) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: matrix multiplication distributes over addition.
func TestMulDistributesProperty(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -(seed + 1)
		}
		n := int(seed%6) + 1
		a := Random(n, n, seed)
		b := Random(n, n, seed+1)
		c := Random(n, n, seed+2)
		bc := b.Clone()
		bc.Add(c)
		lhs := Mul(a, bc)
		rhs := Mul(a, b)
		rhs.Add(Mul(a, c))
		return lhs.MaxAbsDiff(rhs) < 1e-11
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiagDominantIsStableForLU(t *testing.T) {
	a := RandomDiagDominant(20, 99)
	for i := 0; i < 20; i++ {
		off := 0.0
		for j := 0; j < 20; j++ {
			if j != i {
				off += math.Abs(a.At(i, j))
			}
		}
		if math.Abs(a.At(i, i)) <= off {
			t.Fatalf("row %d not diagonally dominant", i)
		}
	}
}

func TestCholeskyInPlaceReconstructs(t *testing.T) {
	for _, n := range []int{1, 2, 8, 17} {
		a := RandomSPD(n, int64(n))
		w := a.Clone()
		if err := CholeskyInPlace(w); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		l := w.LowerTriangle()
		recon := Mul(l, l.Transpose())
		if d := recon.MaxAbsDiff(a); d > 1e-9*float64(n)*float64(n) {
			t.Errorf("n=%d: ||LLᵀ − A|| = %g", n, d)
		}
	}
}

func TestCholeskyInPlaceRejectsIndefinite(t *testing.T) {
	a := Identity(3)
	a.Set(1, 1, -4)
	if err := CholeskyInPlace(a); err == nil {
		t.Error("indefinite matrix should be rejected")
	}
}

func TestCholeskyInPlacePanicsNonSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-square should panic")
		}
	}()
	CholeskyInPlace(New(2, 3))
}

func TestCholeskyFlops(t *testing.T) {
	if got := CholeskyFlops(3); math.Abs(got-9) > 1e-12 {
		t.Errorf("CholeskyFlops(3) = %g, want 9", got)
	}
}

func TestLowerTriangle(t *testing.T) {
	a := FromData(2, 2, []float64{1, 2, 3, 4})
	l := a.LowerTriangle()
	if l.At(0, 0) != 1 || l.At(0, 1) != 0 || l.At(1, 0) != 3 || l.At(1, 1) != 4 {
		t.Errorf("LowerTriangle: %v", l.Data)
	}
}

func TestRandomSPDIsSPD(t *testing.T) {
	a := RandomSPD(12, 9)
	// Symmetric.
	if d := a.MaxAbsDiff(a.Transpose()); d > 1e-12 {
		t.Errorf("not symmetric: %g", d)
	}
	// Positive definite: Cholesky succeeds.
	if err := CholeskyInPlace(a.Clone()); err != nil {
		t.Errorf("not positive definite: %v", err)
	}
}
