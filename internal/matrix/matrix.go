// Package matrix provides the dense row-major linear-algebra kernels the
// distributed algorithms run locally on each rank: blocked matrix multiply,
// addition, block copy in and out, transposition, norms and comparison
// helpers, plus unblocked LU for panel factorization.
package matrix

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is a rows×cols matrix stored row-major in a single slice.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimensions %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromData wraps data (not copied) as a rows×cols matrix.
func FromData(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("matrix: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (a *Dense) At(i, j int) float64 { return a.Data[i*a.Cols+j] }

// Set assigns element (i, j).
func (a *Dense) Set(i, j int, v float64) { a.Data[i*a.Cols+j] = v }

// Clone returns a deep copy.
func (a *Dense) Clone() *Dense {
	b := New(a.Rows, a.Cols)
	copy(b.Data, a.Data)
	return b
}

// Equalish reports whether a and b have the same shape and every element
// agrees within tol.
func (a *Dense) Equalish(b *Dense, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest elementwise |a-b|; shapes must match.
func (a *Dense) MaxAbsDiff(b *Dense) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	m := 0.0
	for i, v := range a.Data {
		if d := math.Abs(v - b.Data[i]); d > m {
			m = d
		}
	}
	return m
}

// MaxAbs returns the largest |a_ij|.
func (a *Dense) MaxAbs() float64 {
	m := 0.0
	for _, v := range a.Data {
		if d := math.Abs(v); d > m {
			m = d
		}
	}
	return m
}

// FrobeniusNorm returns sqrt(sum a_ij²).
func (a *Dense) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range a.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Random returns a rows×cols matrix with i.i.d. uniform entries in [-1, 1)
// drawn from a deterministic generator seeded with seed.
func Random(rows, cols int, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	a := New(rows, cols)
	for i := range a.Data {
		a.Data[i] = 2*rng.Float64() - 1
	}
	return a
}

// RandomDiagDominant returns a random n×n matrix made strictly diagonally
// dominant, so LU without pivoting is numerically stable.
func RandomDiagDominant(n int, seed int64) *Dense {
	a := Random(n, n, seed)
	for i := 0; i < n; i++ {
		rowSum := 0.0
		for j := 0; j < n; j++ {
			rowSum += math.Abs(a.At(i, j))
		}
		a.Set(i, i, rowSum+1)
	}
	return a
}

// Identity returns the n×n identity.
func Identity(n int) *Dense {
	a := New(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	return a
}

// Add accumulates b into a elementwise; shapes must match.
func (a *Dense) Add(b *Dense) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: add shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	for i, v := range b.Data {
		a.Data[i] += v
	}
}

// Sub subtracts b from a elementwise; shapes must match.
func (a *Dense) Sub(b *Dense) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: sub shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	for i, v := range b.Data {
		a.Data[i] -= v
	}
}

// Scale multiplies every element by s.
func (a *Dense) Scale(s float64) {
	for i := range a.Data {
		a.Data[i] *= s
	}
}

// Transpose returns aᵀ.
func (a *Dense) Transpose() *Dense {
	b := New(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			b.Set(j, i, a.At(i, j))
		}
	}
	return b
}

// Block returns a copy of the sub-matrix rows [r0,r0+rows) × cols
// [c0,c0+cols).
func (a *Dense) Block(r0, c0, rows, cols int) *Dense {
	if r0 < 0 || c0 < 0 || r0+rows > a.Rows || c0+cols > a.Cols {
		panic(fmt.Sprintf("matrix: block [%d:%d,%d:%d] outside %dx%d", r0, r0+rows, c0, c0+cols, a.Rows, a.Cols))
	}
	b := New(rows, cols)
	for i := 0; i < rows; i++ {
		copy(b.Data[i*cols:(i+1)*cols], a.Data[(r0+i)*a.Cols+c0:(r0+i)*a.Cols+c0+cols])
	}
	return b
}

// SetBlock copies b into a at offset (r0, c0).
func (a *Dense) SetBlock(r0, c0 int, b *Dense) {
	if r0 < 0 || c0 < 0 || r0+b.Rows > a.Rows || c0+b.Cols > a.Cols {
		panic(fmt.Sprintf("matrix: setblock [%d:%d,%d:%d] outside %dx%d", r0, r0+b.Rows, c0, c0+b.Cols, a.Rows, a.Cols))
	}
	for i := 0; i < b.Rows; i++ {
		copy(a.Data[(r0+i)*a.Cols+c0:(r0+i)*a.Cols+c0+b.Cols], b.Data[i*b.Cols:(i+1)*b.Cols])
	}
}

// MulAdd accumulates a·b into c (c += a·b) with a blocked i-k-j loop order
// that keeps the inner loop streaming over contiguous rows. Shapes must
// conform: a is m×k, b is k×n, c is m×n.
func MulAdd(c, a, b *Dense) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: mul shape mismatch: c %dx%d = a %dx%d * b %dx%d",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	const bs = 64
	m, kk, n := a.Rows, a.Cols, b.Cols
	for i0 := 0; i0 < m; i0 += bs {
		iMax := min(i0+bs, m)
		for k0 := 0; k0 < kk; k0 += bs {
			kMax := min(k0+bs, kk)
			for j0 := 0; j0 < n; j0 += bs {
				jMax := min(j0+bs, n)
				for i := i0; i < iMax; i++ {
					crow := c.Data[i*n : (i+1)*n]
					arow := a.Data[i*kk : (i+1)*kk]
					for k := k0; k < kMax; k++ {
						aik := arow[k]
						if aik == 0 {
							continue
						}
						brow := b.Data[k*n : (k+1)*n]
						for j := j0; j < jMax; j++ {
							crow[j] += aik * brow[j]
						}
					}
				}
			}
		}
	}
}

// Mul returns a·b.
func Mul(a, b *Dense) *Dense {
	c := New(a.Rows, b.Cols)
	MulAdd(c, a, b)
	return c
}

// MulFlops returns the flop count of MulAdd on the given shapes: 2·m·k·n.
func MulFlops(m, k, n int) float64 { return 2 * float64(m) * float64(k) * float64(n) }

// LUInPlace factors a (square) in place without pivoting: afterwards the
// strict lower triangle holds L (unit diagonal implied) and the upper
// triangle holds U. The caller must supply a matrix for which pivot-free
// elimination is stable (e.g. diagonally dominant). Returns an error if a
// zero pivot appears.
func LUInPlace(a *Dense) error {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("matrix: LU of non-square %dx%d", a.Rows, a.Cols))
	}
	n := a.Rows
	for k := 0; k < n; k++ {
		piv := a.At(k, k)
		if piv == 0 {
			return fmt.Errorf("matrix: zero pivot at step %d", k)
		}
		for i := k + 1; i < n; i++ {
			lik := a.At(i, k) / piv
			a.Set(i, k, lik)
			for j := k + 1; j < n; j++ {
				a.Set(i, j, a.At(i, j)-lik*a.At(k, j))
			}
		}
	}
	return nil
}

// LUFlops returns the approximate flop count of LU on an n×n matrix:
// (2/3)n³.
func LUFlops(n int) float64 { return 2.0 / 3.0 * float64(n) * float64(n) * float64(n) }

// SplitLU separates an in-place LU result into unit-lower L and upper U.
func SplitLU(a *Dense) (l, u *Dense) {
	n := a.Rows
	l, u = New(n, n), New(n, n)
	for i := 0; i < n; i++ {
		l.Set(i, i, 1)
		for j := 0; j < n; j++ {
			switch {
			case j < i:
				l.Set(i, j, a.At(i, j))
			default:
				u.Set(i, j, a.At(i, j))
			}
		}
	}
	return l, u
}

// TriSolveLowerUnit solves L·X = B in place over B, with L unit lower
// triangular (diagonal implied 1, strict lower part taken from l).
func TriSolveLowerUnit(l, b *Dense) {
	if l.Rows != l.Cols || l.Rows != b.Rows {
		panic("matrix: trsm shape mismatch")
	}
	n, m := l.Rows, b.Cols
	for i := 0; i < n; i++ {
		for k := 0; k < i; k++ {
			lik := l.At(i, k)
			if lik == 0 {
				continue
			}
			for j := 0; j < m; j++ {
				b.Set(i, j, b.At(i, j)-lik*b.At(k, j))
			}
		}
	}
}

// TriSolveUpperRight solves X·U = B in place over B, with U upper
// triangular (including diagonal). Used for computing L panels in blocked
// LU: L21 = A21·U11⁻¹.
func TriSolveUpperRight(u, b *Dense) {
	if u.Rows != u.Cols || u.Rows != b.Cols {
		panic("matrix: trsm shape mismatch")
	}
	n, m := u.Rows, b.Rows
	for j := 0; j < n; j++ {
		ujj := u.At(j, j)
		if ujj == 0 {
			panic("matrix: singular U in triangular solve")
		}
		for i := 0; i < m; i++ {
			s := b.At(i, j)
			for k := 0; k < j; k++ {
				s -= b.At(i, k) * u.At(k, j)
			}
			b.Set(i, j, s/ujj)
		}
	}
}

// TriSolveFlops returns the flop count of an n×n triangular solve against
// m right-hand sides: n²·m.
func TriSolveFlops(n, m int) float64 { return float64(n) * float64(n) * float64(m) }

// CholeskyInPlace factors a symmetric positive-definite matrix in place:
// afterwards the lower triangle holds L with A = L·Lᵀ (the upper triangle
// is left untouched). Returns an error on a non-positive pivot.
func CholeskyInPlace(a *Dense) error {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("matrix: Cholesky of non-square %dx%d", a.Rows, a.Cols))
	}
	n := a.Rows
	for k := 0; k < n; k++ {
		d := a.At(k, k)
		for j := 0; j < k; j++ {
			d -= a.At(k, j) * a.At(k, j)
		}
		if d <= 0 {
			return fmt.Errorf("matrix: non-positive pivot %g at step %d", d, k)
		}
		d = math.Sqrt(d)
		a.Set(k, k, d)
		for i := k + 1; i < n; i++ {
			s := a.At(i, k)
			for j := 0; j < k; j++ {
				s -= a.At(i, j) * a.At(k, j)
			}
			a.Set(i, k, s/d)
		}
	}
	return nil
}

// CholeskyFlops returns the approximate flop count: n³/3.
func CholeskyFlops(n int) float64 { return float64(n) * float64(n) * float64(n) / 3 }

// LowerTriangle returns a copy with everything above the diagonal zeroed.
func (a *Dense) LowerTriangle() *Dense {
	l := New(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j <= i && j < a.Cols; j++ {
			l.Set(i, j, a.At(i, j))
		}
	}
	return l
}

// RandomSPD returns a random symmetric positive-definite n×n matrix:
// B·Bᵀ + n·I for a random B.
func RandomSPD(n int, seed int64) *Dense {
	b := Random(n, n, seed)
	a := Mul(b, b.Transpose())
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	return a
}
