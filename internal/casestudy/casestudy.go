// Package casestudy reproduces Section VI of the paper: the dual-socket
// Sandy Bridge ("Jaketown") case study. It derives the Table I model
// parameters, generates the Figure 6 and Figure 7 efficiency-scaling
// curves for 2.5D matrix multiplication, and recomputes Table II.
package casestudy

import (
	"math"

	"perfscale/internal/core"
	"perfscale/internal/machine"
)

// CaseN is the problem size of the Section VI study (n = 35000).
const CaseN = 35000

// CaseP is the processor count: the two sockets of the server.
const CaseP = 2

// Memory returns the per-processor memory the study's energy model uses:
// the 2.5D algorithm can exploit at most M = n²/p^(2/3), which is far below
// the server's 64 GB per socket, so the model clamps there. (The paper
// notes the configuration is "outside the theoretical region of strong
// scaling"; clamping at the 3D limit is the choice that reproduces both of
// its Figure 6/7 observations — βe scaling having almost no effect, and the
// joint scaling reaching ≈75 GFLOPS/W after 5 generations.)
func Memory() float64 {
	jk := machine.Jaketown()
	limit := float64(CaseN) * float64(CaseN) / math.Pow(CaseP, 2.0/3.0)
	return math.Min(jk.MemWords, limit)
}

// Efficiency returns the modeled GFLOPS/W of 2.5D matmul on machine m at
// the case-study configuration.
func Efficiency(m machine.Params) float64 {
	return core.MatMulClassical(m, CaseN, CaseP, Memory()).GFLOPSPerWatt()
}

// Fig6Point is one point of Figure 6: the modeled efficiency after
// halving a single energy parameter `Generation` times.
type Fig6Point struct {
	Generation int
	Field      machine.EnergyField
	Efficiency float64
}

// Fig6Fields are the parameters Figure 6 scales independently. (The body
// text mentions αe as well, but Table I sets αe = 0, so scaling it is a
// no-op; the figure itself plots γe, βe and δe.)
var Fig6Fields = []machine.EnergyField{
	machine.FieldGammaE, machine.FieldBetaE, machine.FieldDeltaE,
}

// Fig6 generates the Figure 6 series: for each of γe, βe, δe, the modeled
// GFLOPS/W after 0..generations halvings of that parameter alone.
func Fig6(generations int) []Fig6Point {
	jk := machine.Jaketown()
	var out []Fig6Point
	for _, f := range Fig6Fields {
		for g := 0; g <= generations; g++ {
			scaled := jk.AfterGenerations(g, f)
			out = append(out, Fig6Point{Generation: g, Field: f, Efficiency: Efficiency(scaled)})
		}
	}
	return out
}

// Fig7Point is one point of Figure 7: efficiency with γe, βe and δe all
// halved together.
type Fig7Point struct {
	Generation int
	// Multiplier is the improvement factor over current technology, 2^g.
	Multiplier float64
	Efficiency float64
}

// Fig7 generates the Figure 7 series: the modeled GFLOPS/W after scaling
// γe, βe and δe jointly by 2^-g.
func Fig7(generations int) []Fig7Point {
	jk := machine.Jaketown()
	out := make([]Fig7Point, 0, generations+1)
	for g := 0; g <= generations; g++ {
		scaled := jk.AfterGenerations(g, Fig6Fields...)
		out = append(out, Fig7Point{
			Generation: g,
			Multiplier: math.Pow(2, float64(g)),
			Efficiency: Efficiency(scaled),
		})
	}
	return out
}

// GenerationsToTarget returns the first generation at which jointly halving
// γe, βe, δe reaches the target efficiency (GFLOPS/W), or -1 if not within
// maxGen. The paper's headline: ≈75 GFLOPS/W after 5 generations.
func GenerationsToTarget(target float64, maxGen int) int {
	for _, pt := range Fig7(maxGen) {
		if pt.Efficiency >= target {
			return pt.Generation
		}
	}
	return -1
}

// SaturationEfficiency returns the limit of Figure 6's single-parameter
// curve for field f: the efficiency with that parameter driven to zero.
// Scaling one parameter "saturates" because the others still consume
// energy.
func SaturationEfficiency(f machine.EnergyField) float64 {
	jk := machine.Jaketown().ScaleEnergy(0, f)
	return Efficiency(jk)
}

// Table1Row is one derived-versus-printed parameter of Table I.
type Table1Row struct {
	Name    string
	Derived float64 // recomputed from raw hardware characteristics
	Printed float64 // value as printed in Table I
}

// Table1 recomputes the derivable Table I parameters from the raw hardware
// characteristics and pairs them with the printed values.
func Table1() []Table1Row {
	raw := machine.JaketownSpec()
	jk := machine.Jaketown()
	return []Table1Row{
		{Name: "gamma_t (s/flop)", Derived: raw.DerivedGammaT(), Printed: jk.GammaT},
		{Name: "beta_t (s/word)", Derived: raw.DerivedBetaT(), Printed: jk.BetaT},
		{Name: "alpha_t (s/msg)", Derived: raw.LinkLatencySec, Printed: jk.AlphaT},
		{Name: "gamma_e (J/flop)", Derived: raw.DerivedGammaE(), Printed: jk.GammaE},
	}
}

// Table2Row is one device of Table II with recomputed derived columns.
type Table2Row struct {
	Device                     machine.DeviceSpec
	PeakGFLOPS                 float64
	GammaT, GammaE             float64
	GFLOPSPerW                 float64
	PeakErr, GammaEErr, EffErr float64 // relative error vs printed values
}

// Table2 recomputes the derived columns of Table II for every device.
func Table2() []Table2Row {
	devices := machine.TableIIDevices()
	rows := make([]Table2Row, 0, len(devices))
	for _, d := range devices {
		rows = append(rows, Table2Row{
			Device:     d,
			PeakGFLOPS: d.PeakGFLOPS(),
			GammaT:     d.GammaT(),
			GammaE:     d.GammaE(),
			GFLOPSPerW: d.GFLOPSPerWatt(),
			PeakErr:    relErr(d.PeakGFLOPS(), d.PaperPeakGFLOPS),
			GammaEErr:  relErr(d.GammaE(), d.PaperGammaE),
			EffErr:     relErr(d.GFLOPSPerWatt(), d.PaperGFLOPSPerW),
		})
	}
	return rows
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}
