package casestudy

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenArtifacts pins the numerical content of every Section VI
// artifact — Table I, Table II, Figure 6 and Figure 7 — to six significant
// digits. The derivations are pure functions of the Jaketown constants, so
// any drift here means the model changed, not the formatting.
func TestGoldenArtifacts(t *testing.T) {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }

	w("table1: name derived printed")
	for _, r := range Table1() {
		w("  %s %.6g %.6g", r.Name, r.Derived, r.Printed)
	}
	w("table2: device peakGFLOPS gammaT gammaE gflopsPerW effErr")
	for _, r := range Table2() {
		w("  %s %.6g %.6g %.6g %.6g %.6g", r.Device.Name, r.PeakGFLOPS, r.GammaT, r.GammaE, r.GFLOPSPerW, r.EffErr)
	}
	w("fig6: generation field efficiency")
	for _, p := range Fig6(8) {
		w("  %d %s %.6g", p.Generation, p.Field, p.Efficiency)
	}
	w("fig7: generation multiplier efficiency")
	for _, p := range Fig7(8) {
		w("  %d %.6g %.6g", p.Generation, p.Multiplier, p.Efficiency)
	}
	w("generations to 75 GFLOPS/W: %d", GenerationsToTarget(75, 20))

	path := filepath.Join("testdata", "artifacts.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if b.String() != string(want) {
		t.Errorf("artifacts differ from %s:\n--- got\n%s\n--- want\n%s", path, b.String(), want)
	}
}
