package casestudy

import (
	"math"
	"testing"

	"perfscale/internal/machine"
)

func TestMemoryClampsAt3DLimit(t *testing.T) {
	m := Memory()
	limit := float64(CaseN) * float64(CaseN) / math.Pow(CaseP, 2.0/3.0)
	if m != limit {
		t.Errorf("memory should clamp at the 3D limit %g, got %g", limit, m)
	}
	if m > machine.Jaketown().MemWords {
		t.Error("clamped memory exceeds the machine")
	}
}

func TestBaselineEfficiency(t *testing.T) {
	// The un-scaled model should land near the 2.5-2.65 GFLOPS/W peak
	// efficiency of the Sandy Bridge row of Table II (compute-dominated at
	// the clamped memory).
	eff := Efficiency(machine.Jaketown())
	if eff < 2.0 || eff > 2.65 {
		t.Errorf("baseline efficiency %g, want ≈2.5", eff)
	}
}

func TestFig6Observations(t *testing.T) {
	pts := Fig6(8)
	// Collect per-field series.
	series := map[machine.EnergyField][]float64{}
	for _, p := range pts {
		series[p.Field] = append(series[p.Field], p.Efficiency)
	}
	if len(series) != 3 {
		t.Fatalf("expected 3 fields, got %d", len(series))
	}
	for f, s := range series {
		if len(s) != 9 {
			t.Fatalf("field %v: %d generations", f, len(s))
		}
		// Efficiency must be non-decreasing in generations.
		for g := 1; g < len(s); g++ {
			if s[g] < s[g-1]*(1-1e-12) {
				t.Errorf("field %v: efficiency fell at generation %d", f, g)
			}
		}
	}
	ge := series[machine.FieldGammaE]
	be := series[machine.FieldBetaE]
	// Paper observation 1: scaling βe has almost no effect (<1% total).
	if be[8]/be[0] > 1.01 {
		t.Errorf("beta_e scaling should be negligible: %g -> %g", be[0], be[8])
	}
	// Paper observation 2: γe scaling saturates (diminishing returns): the
	// per-halving gain shrinks, the gain past generation 5 is below the
	// gain up to it, and the curve is capped by the saturation limit while
	// the joint Figure 7 curve keeps doubling past it.
	gainTo5 := ge[5] - ge[0]
	gainAfter5 := ge[8] - ge[5]
	if gainAfter5 >= gainTo5 {
		t.Errorf("gamma_e gains should diminish: gain 0->5 = %g, 5->8 = %g", gainTo5, gainAfter5)
	}
	// The curve is an S-shape 1/(γe·2⁻ᵍ + rest): per-generation gains peak
	// where the scaled γe crosses the residual terms (≈ generation 5 here)
	// and shrink afterwards — the "saturation" the paper describes.
	for g := 7; g < len(ge); g++ {
		if ge[g]-ge[g-1] > ge[g-1]-ge[g-2]+1e-9 {
			t.Errorf("gamma_e per-generation gain should shrink past saturation, grew at g=%d", g)
		}
	}
	sat := SaturationEfficiency(machine.FieldGammaE)
	joint := Fig7(10)
	if joint[10].Efficiency <= sat {
		t.Errorf("joint scaling (%g) should blow past the single-parameter cap (%g)", joint[10].Efficiency, sat)
	}
	// And each single-parameter curve is bounded by its saturation limit.
	for f, s := range series {
		limit := SaturationEfficiency(f)
		if s[8] > limit {
			t.Errorf("field %v: efficiency %g exceeds saturation %g", f, s[8], limit)
		}
	}
}

func TestFig7ReachesTargetNearGeneration5(t *testing.T) {
	// Paper observation: "we obtain a desired efficiency of 75 GFLOPS/W
	// after 5 generations if we are able to improve all three parameters
	// together."
	g := GenerationsToTarget(75, 10)
	if g < 4 || g > 6 {
		t.Errorf("75 GFLOPS/W reached at generation %d, want ≈5", g)
	}
}

func TestFig7DoublesEachGeneration(t *testing.T) {
	// With γe, βe, δe jointly halved and all other energy terms zero in
	// Table I, efficiency exactly doubles each generation.
	pts := Fig7(6)
	for i := 1; i < len(pts); i++ {
		ratio := pts[i].Efficiency / pts[i-1].Efficiency
		if math.Abs(ratio-2) > 1e-9 {
			t.Errorf("generation %d: ratio %g, want 2", i, ratio)
		}
	}
	if pts[3].Multiplier != 8 {
		t.Errorf("multiplier at g=3: %g", pts[3].Multiplier)
	}
}

func TestTable1Derivations(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		rel := math.Abs(r.Derived-r.Printed) / math.Abs(r.Printed)
		if rel > 0.01 {
			t.Errorf("%s: derived %g vs printed %g (%.2f%%)", r.Name, r.Derived, r.Printed, rel*100)
		}
	}
}

func TestTable2AllRowsMatch(t *testing.T) {
	for _, row := range Table2() {
		if row.PeakErr > 1e-3 {
			t.Errorf("%s: peak error %g", row.Device.Name, row.PeakErr)
		}
		if row.GammaEErr > 0.01 {
			t.Errorf("%s: gamma_e error %g", row.Device.Name, row.GammaEErr)
		}
		if row.EffErr > 0.01 {
			t.Errorf("%s: efficiency error %g", row.Device.Name, row.EffErr)
		}
	}
}

func TestSaturationOrdering(t *testing.T) {
	// Zeroing γe leaves the (dominant-after-γe) memory term: its saturation
	// must exceed zeroing βe's (which removes almost nothing).
	satGamma := SaturationEfficiency(machine.FieldGammaE)
	satBeta := SaturationEfficiency(machine.FieldBetaE)
	base := Efficiency(machine.Jaketown())
	if satGamma <= satBeta {
		t.Errorf("gamma saturation %g should exceed beta saturation %g", satGamma, satBeta)
	}
	if satBeta > base*1.01 {
		t.Errorf("beta saturation %g should be ≈ baseline %g", satBeta, base)
	}
}
