package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func okResp(body string) cachedResponse {
	return cachedResponse{status: 200, contentType: "application/json", body: []byte(body), cacheable: true}
}

func TestCacheHitAndMiss(t *testing.T) {
	c := newQueryCache(4)
	fills := 0
	fill := func() cachedResponse { fills++; return okResp("a") }
	ctx := context.Background()

	resp, state, err := c.do(ctx, "k", fill)
	if err != nil || state != cacheMiss || string(resp.body) != "a" {
		t.Fatalf("first do = %v %v %v", resp, state, err)
	}
	resp, state, err = c.do(ctx, "k", fill)
	if err != nil || state != cacheHit || string(resp.body) != "a" {
		t.Fatalf("second do = %v %v %v", resp, state, err)
	}
	if fills != 1 {
		t.Errorf("fills = %d, want 1", fills)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newQueryCache(2)
	ctx := context.Background()
	for _, k := range []string{"a", "b", "c"} {
		k := k
		c.do(ctx, k, func() cachedResponse { return okResp(k) })
	}
	if c.len() != 2 {
		t.Fatalf("cache len = %d, want 2", c.len())
	}
	// "a" is the cold entry and must have been evicted; "c" must be warm.
	refilled := false
	c.do(ctx, "a", func() cachedResponse { refilled = true; return okResp("a") })
	if !refilled {
		t.Error("evicted entry served from cache")
	}
	_, state, _ := c.do(ctx, "c", func() cachedResponse { return okResp("c") })
	if state != cacheHit {
		t.Errorf("recent entry state = %v, want hit", state)
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := newQueryCache(4)
	ctx := context.Background()
	fills := 0
	fill := func() cachedResponse {
		fills++
		return cachedResponse{status: 429, body: []byte("no"), cacheable: false}
	}
	c.do(ctx, "k", fill)
	c.do(ctx, "k", fill)
	if fills != 2 {
		t.Errorf("fills = %d, want 2 (errors must not be cached)", fills)
	}
}

func TestCacheCoalescesConcurrentIdenticalRequests(t *testing.T) {
	c := newQueryCache(4)
	gate := make(chan struct{})
	var fills atomic.Int64
	leaderIn := make(chan struct{})
	fill := func() cachedResponse {
		fills.Add(1)
		close(leaderIn)
		<-gate
		return okResp("shared")
	}

	var wg sync.WaitGroup
	var coalesced atomic.Int64
	results := make([]string, 8)
	wg.Add(1)
	go func() { // leader
		defer wg.Done()
		resp, _, _ := c.do(context.Background(), "k", fill)
		results[0] = string(resp.body)
	}()
	<-leaderIn
	for i := 1; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, state, err := c.do(context.Background(), "k", func() cachedResponse {
				t.Error("follower ran fill")
				return okResp("follower")
			})
			if err != nil {
				t.Errorf("follower %d: %v", i, err)
				return
			}
			if state == cacheCoalesced {
				coalesced.Add(1)
			}
			results[i] = string(resp.body)
		}(i)
	}
	// Give the followers time to park on the in-flight entry, then let the
	// leader finish.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()

	if fills.Load() != 1 {
		t.Errorf("fills = %d, want 1", fills.Load())
	}
	if coalesced.Load() == 0 {
		t.Error("no follower was coalesced")
	}
	for i, r := range results {
		if r != "shared" {
			t.Errorf("request %d got %q, want shared", i, r)
		}
	}
}

func TestCacheCoalescedFollowerHonorsDeadline(t *testing.T) {
	c := newQueryCache(4)
	gate := make(chan struct{})
	defer close(gate)
	leaderIn := make(chan struct{})
	go c.do(context.Background(), "k", func() cachedResponse {
		close(leaderIn)
		<-gate
		return okResp("late")
	})
	<-leaderIn
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, _, err := c.do(ctx, "k", func() cachedResponse { return okResp("x") })
	if err == nil {
		t.Fatal("follower with expired deadline got no error")
	}
}

// TestCachePanickingLeaderReleasesKey is the wedged-key regression test:
// before the deferred cleanup in do, a fill that panicked left its key in
// the in-flight table forever, so every later request for that key
// coalesced onto a flight that would never close.
func TestCachePanickingLeaderReleasesKey(t *testing.T) {
	c := newQueryCache(4)
	ctx := context.Background()

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("leader's panic did not propagate out of do")
			}
		}()
		c.do(ctx, "k", func() cachedResponse { panic("boom") })
	}()

	// The key must be free again: a second request becomes a fresh leader
	// and completes instead of hanging on the dead flight.
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, state, err := c.do(ctx, "k", func() cachedResponse { return okResp("retry") })
		if err != nil || state != cacheMiss || string(resp.body) != "retry" {
			t.Errorf("retry after panic = %v %v %v, want fresh miss", resp, state, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("second request for the panicked key hung")
	}
}

// TestCachePanickingLeaderReleasesFollowers checks the other half of the
// cleanup: followers already parked on the flight when the leader panics
// must wake with a rendered 500, not block until their contexts expire.
func TestCachePanickingLeaderReleasesFollowers(t *testing.T) {
	c := newQueryCache(4)
	leaderIn := make(chan struct{})
	release := make(chan struct{})

	go func() {
		defer func() { recover() }()
		c.do(context.Background(), "k", func() cachedResponse {
			close(leaderIn)
			<-release
			panic("boom")
		})
	}()
	<-leaderIn

	followerDone := make(chan cachedResponse, 1)
	go func() {
		resp, state, err := c.do(context.Background(), "k", func() cachedResponse {
			t.Error("follower ran fill")
			return okResp("follower")
		})
		if err != nil || state != cacheCoalesced {
			t.Errorf("follower outcome = %v %v, want coalesced", state, err)
		}
		followerDone <- resp
	}()
	// Let the follower park on the flight, then spring the panic.
	time.Sleep(20 * time.Millisecond)
	close(release)

	select {
	case resp := <-followerDone:
		if resp.status != 500 {
			t.Errorf("follower of panicked leader got status %d, want 500", resp.status)
		}
		if resp.cacheable {
			t.Error("panic response marked cacheable")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower hung after the leader panicked")
	}
	if c.len() != 0 {
		t.Errorf("cache len = %d after panic, want 0", c.len())
	}
}

func TestCacheConcurrentDistinctKeys(t *testing.T) {
	c := newQueryCache(64)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := fmt.Sprintf("k%d", i%16)
			resp, _, err := c.do(context.Background(), k, func() cachedResponse { return okResp(k) })
			if err != nil || string(resp.body) != k {
				t.Errorf("key %s: %v %v", k, resp, err)
			}
		}(i)
	}
	wg.Wait()
}
