package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func okResp(body string) cachedResponse {
	return cachedResponse{status: 200, contentType: "application/json", body: []byte(body), cacheable: true}
}

func TestCacheHitAndMiss(t *testing.T) {
	c := newQueryCache(4)
	fills := 0
	fill := func() cachedResponse { fills++; return okResp("a") }
	ctx := context.Background()

	resp, state, err := c.do(ctx, "k", fill)
	if err != nil || state != cacheMiss || string(resp.body) != "a" {
		t.Fatalf("first do = %v %v %v", resp, state, err)
	}
	resp, state, err = c.do(ctx, "k", fill)
	if err != nil || state != cacheHit || string(resp.body) != "a" {
		t.Fatalf("second do = %v %v %v", resp, state, err)
	}
	if fills != 1 {
		t.Errorf("fills = %d, want 1", fills)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newQueryCache(2)
	ctx := context.Background()
	for _, k := range []string{"a", "b", "c"} {
		k := k
		c.do(ctx, k, func() cachedResponse { return okResp(k) })
	}
	if c.len() != 2 {
		t.Fatalf("cache len = %d, want 2", c.len())
	}
	// "a" is the cold entry and must have been evicted; "c" must be warm.
	refilled := false
	c.do(ctx, "a", func() cachedResponse { refilled = true; return okResp("a") })
	if !refilled {
		t.Error("evicted entry served from cache")
	}
	_, state, _ := c.do(ctx, "c", func() cachedResponse { return okResp("c") })
	if state != cacheHit {
		t.Errorf("recent entry state = %v, want hit", state)
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := newQueryCache(4)
	ctx := context.Background()
	fills := 0
	fill := func() cachedResponse {
		fills++
		return cachedResponse{status: 429, body: []byte("no"), cacheable: false}
	}
	c.do(ctx, "k", fill)
	c.do(ctx, "k", fill)
	if fills != 2 {
		t.Errorf("fills = %d, want 2 (errors must not be cached)", fills)
	}
}

func TestCacheCoalescesConcurrentIdenticalRequests(t *testing.T) {
	c := newQueryCache(4)
	gate := make(chan struct{})
	var fills atomic.Int64
	leaderIn := make(chan struct{})
	fill := func() cachedResponse {
		fills.Add(1)
		close(leaderIn)
		<-gate
		return okResp("shared")
	}

	var wg sync.WaitGroup
	var coalesced atomic.Int64
	results := make([]string, 8)
	wg.Add(1)
	go func() { // leader
		defer wg.Done()
		resp, _, _ := c.do(context.Background(), "k", fill)
		results[0] = string(resp.body)
	}()
	<-leaderIn
	for i := 1; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, state, err := c.do(context.Background(), "k", func() cachedResponse {
				t.Error("follower ran fill")
				return okResp("follower")
			})
			if err != nil {
				t.Errorf("follower %d: %v", i, err)
				return
			}
			if state == cacheCoalesced {
				coalesced.Add(1)
			}
			results[i] = string(resp.body)
		}(i)
	}
	// Give the followers time to park on the in-flight entry, then let the
	// leader finish.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()

	if fills.Load() != 1 {
		t.Errorf("fills = %d, want 1", fills.Load())
	}
	if coalesced.Load() == 0 {
		t.Error("no follower was coalesced")
	}
	for i, r := range results {
		if r != "shared" {
			t.Errorf("request %d got %q, want shared", i, r)
		}
	}
}

func TestCacheCoalescedFollowerHonorsDeadline(t *testing.T) {
	c := newQueryCache(4)
	gate := make(chan struct{})
	defer close(gate)
	leaderIn := make(chan struct{})
	go c.do(context.Background(), "k", func() cachedResponse {
		close(leaderIn)
		<-gate
		return okResp("late")
	})
	<-leaderIn
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, _, err := c.do(ctx, "k", func() cachedResponse { return okResp("x") })
	if err == nil {
		t.Fatal("follower with expired deadline got no error")
	}
}

func TestCacheConcurrentDistinctKeys(t *testing.T) {
	c := newQueryCache(64)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := fmt.Sprintf("k%d", i%16)
			resp, _, err := c.do(context.Background(), k, func() cachedResponse { return okResp(k) })
			if err != nil || string(resp.body) != k {
				t.Errorf("key %s: %v %v", k, resp, err)
			}
		}(i)
	}
	wg.Wait()
}
