package serve

import (
	"container/list"
	"context"
	"net/http"
	"sync"
)

// Content-addressed response cache with singleflight coalescing.
//
// Every query the service answers is a pure function of its canonical
// parameter tuple: the model is closed-form and the simulator is
// deterministic (virtual time, seeded matrices, seeded faults). That makes
// responses content-addressable — the canonical key IS the content hash —
// so a bounded LRU of rendered responses and coalescing of identical
// in-flight requests are both exactly correct, never just heuristics.
//
// Coalesced followers share the leader's outcome, whatever it is: if the
// leader is shed or times out, the followers see the same response. An
// identical request admitted at the same instant would have met the same
// fate, and collapsing the duplicates is the point.

// cachedResponse is a fully rendered response body ready to replay.
type cachedResponse struct {
	status      int
	contentType string
	body        []byte
	// retryAfterS carries a 429's Retry-After hint through the render.
	retryAfterS int
	// cacheable marks responses worth keeping (only 200s: errors are
	// cheap to recompute and may be transient, e.g. a 429).
	cacheable bool
}

// cacheState says how a lookup resolved, for metrics.
type cacheState int

const (
	cacheMiss cacheState = iota
	cacheHit
	cacheCoalesced
)

type flight struct {
	done chan struct{}
	resp cachedResponse
}

type entry struct {
	key  string
	resp cachedResponse
}

// queryCache is the LRU + singleflight combination. The zero value is not
// usable; use newQueryCache.
type queryCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recent
	byKey    map[string]*list.Element
	inflight map[string]*flight
}

func newQueryCache(capacity int) *queryCache {
	if capacity < 1 {
		capacity = 1
	}
	return &queryCache{
		capacity: capacity,
		ll:       list.New(),
		byKey:    make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// do resolves key: from the LRU (hit), by waiting on an identical in-flight
// request (coalesced), or by running fill as the leader (miss). A coalesced
// caller whose ctx expires first gets ctx.Err instead of waiting forever.
func (c *queryCache) do(ctx context.Context, key string, fill func() cachedResponse) (cachedResponse, cacheState, error) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		resp := el.Value.(*entry).resp
		c.mu.Unlock()
		return resp, cacheHit, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.resp, cacheCoalesced, nil
		case <-ctx.Done():
			return cachedResponse{}, cacheCoalesced, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	// The leader must clear the flight and release its followers no matter
	// how fill exits. Without the defer, a panicking fill leaves the key in
	// c.inflight forever: current followers hang until their own contexts
	// expire, and every future request for the key coalesces onto a flight
	// that will never close. Followers of a panicked leader get a rendered
	// 500 — an identical request would have hit the same panic — and the
	// panic itself keeps unwinding into the middleware's recovery.
	filled := false
	defer func() {
		if !filled {
			f.resp = renderError(&apiError{
				Status: http.StatusInternalServerError,
				Code:   "internal",
				Detail: "query computation panicked",
			})
		}
		c.mu.Lock()
		delete(c.inflight, key)
		if f.resp.cacheable {
			c.insert(key, f.resp)
		}
		c.mu.Unlock()
		close(f.done)
	}()
	f.resp = fill()
	filled = true
	return f.resp, cacheMiss, nil
}

// insert adds a response under key and evicts from the cold end; callers
// hold c.mu.
func (c *queryCache) insert(key string, resp cachedResponse) {
	if el, ok := c.byKey[key]; ok {
		el.Value.(*entry).resp = resp
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&entry{key: key, resp: resp})
	for c.ll.Len() > c.capacity {
		cold := c.ll.Back()
		c.ll.Remove(cold)
		delete(c.byKey, cold.Value.(*entry).key)
	}
}

// len reports the number of cached entries (for tests).
func (c *queryCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
