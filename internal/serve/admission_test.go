package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestLaneShedsWhenFull(t *testing.T) {
	l := newLane("test", 1, 1)
	ctx := context.Background()

	release1, err := l.admit(ctx)
	if err != nil {
		t.Fatalf("first admit: %v", err)
	}
	// Second caller takes the single queue slot and waits.
	queuedIn := make(chan struct{})
	queuedOut := make(chan error, 1)
	go func() {
		close(queuedIn)
		release, err := l.admit(ctx)
		if err == nil {
			release()
		}
		queuedOut <- err
	}()
	<-queuedIn
	waitFor(t, func() bool { return l.queued() == 1 })

	// Third caller finds the queue full and must be shed with the typed
	// error.
	_, err = l.admit(ctx)
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("third admit error = %v, want *OverloadError", err)
	}
	if oe.Lane != "test" || oe.Reason != "queue_full" || oe.RetryAfterS < 1 {
		t.Errorf("overload = %+v", oe)
	}

	release1()
	if err := <-queuedOut; err != nil {
		t.Errorf("queued admit after release: %v", err)
	}
}

func TestLaneAdmitHonorsContext(t *testing.T) {
	l := newLane("test", 1, 4)
	release, err := l.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := l.admit(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("queued admit with expired ctx = %v, want DeadlineExceeded", err)
	}
	if got := l.queued(); got != 0 {
		t.Errorf("queue depth after abandoned wait = %d, want 0", got)
	}
}

func TestLaneRetryAfterTracksServiceTime(t *testing.T) {
	l := newLane("test", 1, 2)
	for i := 0; i < 8; i++ {
		l.observeService(3.0)
	}
	// Queue of 2 ahead plus the caller, ~3s each.
	if ra := l.retryAfter(); ra < 3 || ra > 30 {
		t.Errorf("retryAfter = %d, want a few multiples of the 3s service time", ra)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
