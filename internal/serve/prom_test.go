package serve

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// promScrape fetches /metricsz in Prometheus format and parses it into a
// metric map keyed by the full series name including labels. The parser is
// deliberately strict about the exposition format: every non-comment line
// must be `name{labels} value` or `name value`.
func promScrape(t *testing.T, url string, header http.Header) map[string]float64 {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("scrape status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q is not the text exposition format", ct)
	}
	series := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		name, valStr := line[:idx], line[idx+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("malformed value in line %q: %v", line, err)
		}
		if strings.ContainsAny(name, " \t") {
			t.Fatalf("malformed series name %q", name)
		}
		if _, dup := series[name]; dup {
			t.Fatalf("duplicate series %q", name)
		}
		series[name] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return series
}

func TestMetricszPromFormat(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	// Generate traffic: two identical cheap queries (miss + hit) and one
	// bad request.
	get(t, ts.URL+"/price?alg=matmul&n=4096&p=64")
	get(t, ts.URL+"/price?alg=matmul&n=4096&p=64")
	if code, _, _ := get(t, ts.URL+"/price?alg=matmul&n=-1&p=64"); code != 400 {
		t.Fatalf("bad request returned %d", code)
	}

	series := promScrape(t, ts.URL+"/metricsz?format=prom", nil)

	if got := series[`perfscale_requests_total{lane="cheap",outcome="served"}`]; got != 2 {
		t.Fatalf("served counter = %v, want 2", got)
	}
	if got := series[`perfscale_requests_total{lane="cheap",outcome="rejected"}`]; got != 1 {
		t.Fatalf("rejected counter = %v, want 1", got)
	}
	if got := series["perfscale_cache_hits_total"]; got != 1 {
		t.Fatalf("cache hits = %v, want 1", got)
	}
	if got := series["perfscale_cache_misses_total"]; got != 1 {
		t.Fatalf("cache misses = %v, want 1", got)
	}
	if got := series["perfscale_panics_total"]; got != 0 {
		t.Fatalf("panics = %v, want 0", got)
	}
	if got := series["perfscale_uptime_seconds"]; got < 0 {
		t.Fatalf("uptime = %v", got)
	}
	// Per-lane shed counters and latency quantiles exist for every lane
	// the server has seen, with every quantile present.
	for _, q := range []string{"0.5", "0.95", "0.99", "1"} {
		name := fmt.Sprintf(`perfscale_request_latency_ms{lane="cheap",quantile=%q}`, q)
		if _, ok := series[name]; !ok {
			t.Fatalf("missing latency series %s (have %v)", name, series)
		}
	}
	if _, ok := series[`perfscale_requests_total{lane="cheap",outcome="shed"}`]; !ok {
		t.Fatalf("missing shed counter")
	}
}

func TestMetricszContentNegotiation(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	// Accept header requesting the exposition format selects Prometheus.
	h := http.Header{}
	h.Set("Accept", "application/openmetrics-text;version=1.0.0,text/plain;q=0.5")
	series := promScrape(t, ts.URL+"/metricsz", h)
	if _, ok := series["perfscale_uptime_seconds"]; !ok {
		t.Fatalf("negotiated scrape misses uptime: %v", series)
	}

	// Default stays JSON.
	code, body, hdr := get(t, ts.URL+"/metricsz")
	if code != 200 {
		t.Fatalf("JSON metricsz status %d", code)
	}
	if !strings.HasPrefix(hdr.Get("Content-Type"), "application/json") {
		t.Fatalf("default content type %q", hdr.Get("Content-Type"))
	}
	if _, ok := body["uptime_s"]; !ok {
		t.Fatalf("JSON body misses uptime_s: %v", body)
	}
}

func TestWritePromShedCounter(t *testing.T) {
	// Snapshot-level check that a shed increments exactly the shed series.
	m := newMetrics(time.Now())
	m.record("heavy", 429, 0, false)
	m.record("heavy", 200, 5*time.Millisecond, false)
	var sb strings.Builder
	if err := m.Snapshot(time.Now()).WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`perfscale_requests_total{lane="heavy",outcome="shed"} 1`,
		`perfscale_requests_total{lane="heavy",outcome="served"} 1`,
		`perfscale_requests_total{lane="heavy",outcome="failed"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition misses %q:\n%s", want, out)
		}
	}
}
