package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (int, map[string]any, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("GET %s: body is not JSON: %v\n%s", url, err, body)
	}
	return resp.StatusCode, m, resp.Header
}

func TestHealthAndReady(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	if code, body, _ := get(t, ts.URL+"/healthz"); code != 200 || body["status"] != "ok" {
		t.Errorf("healthz = %d %v", code, body)
	}
	if code, body, _ := get(t, ts.URL+"/readyz"); code != 200 || body["status"] != "ready" {
		t.Errorf("readyz = %d %v", code, body)
	}
}

func TestPriceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	url := ts.URL + "/price?alg=matmul&n=4096&p=64"
	code, body, hdr := get(t, url)
	if code != 200 {
		t.Fatalf("price = %d %v", code, body)
	}
	if hdr.Get("X-Cache") != "miss" {
		t.Errorf("first request X-Cache = %q, want miss", hdr.Get("X-Cache"))
	}
	if v, _ := body["total_time_s"].(float64); !(v > 0) {
		t.Errorf("total_time_s = %v, want > 0", body["total_time_s"])
	}
	if v, _ := body["total_energy_j"].(float64); !(v > 0) {
		t.Errorf("total_energy_j = %v, want > 0", body["total_energy_j"])
	}
	// The identical query must replay from the cache.
	code, body2, hdr := get(t, url)
	if code != 200 || hdr.Get("X-Cache") != "hit" {
		t.Errorf("second request = %d, X-Cache = %q, want 200 hit", code, hdr.Get("X-Cache"))
	}
	if body2["total_energy_j"] != body["total_energy_j"] {
		t.Errorf("cached response differs: %v vs %v", body2["total_energy_j"], body["total_energy_j"])
	}
}

func TestPriceAllAlgorithms(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, q := range []string{
		"alg=matmul&n=4096&p=64",
		"alg=strassen&n=4096&p=64",
		"alg=lu&n=4096&p=64",
		"alg=nbody&n=1000000&p=100",
		"alg=fft&n=1048576&p=64",
		"alg=fft&n=1048576&p=64&tree=1",
	} {
		code, body, _ := get(t, ts.URL+"/price?"+q)
		if code != 200 {
			t.Errorf("price?%s = %d %v", q, code, body)
			continue
		}
		if v, _ := body["total_energy_j"].(float64); !(v > 0) {
			t.Errorf("price?%s total_energy_j = %v", q, body["total_energy_j"])
		}
	}
}

func TestPriceBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, tc := range []struct{ q, wantCode string }{
		{"n=4096&p=64", "bad_request"},                      // missing alg
		{"alg=matmul&p=64", "bad_request"},                  // missing n
		{"alg=matmul&n=4096", "bad_request"},                // missing p
		{"alg=matmul&n=4096&p=64&mem=1", "bad_request"},     // mem below n²/p
		{"alg=warp&n=4096&p=64", "bad_request"},             // unknown alg
		{"alg=matmul&n=abc&p=64", "bad_request"},            // non-numeric
		{"alg=matmul&n=4096&p=64&machine=x", "bad_request"}, // unknown preset
	} {
		code, body, _ := get(t, ts.URL+"/price?"+tc.q)
		if code != 400 || body["error"] != tc.wantCode {
			t.Errorf("price?%s = %d %v, want 400 %s", tc.q, code, body, tc.wantCode)
		}
	}
}

func TestOptimizeObjectives(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, q := range []string{
		"alg=nbody&n=1e6&objective=min_energy",
		"alg=nbody&n=1e6&objective=min_energy_given_time&budget=10",
		"alg=nbody&n=1e6&objective=min_time_given_energy&budget=1e6",
		"alg=nbody&n=1e6&objective=min_energy_given_power&budget=5",
		"alg=matmul&n=4096&objective=min_energy",
		"alg=matmul&n=4096&objective=min_energy_given_time&budget=100",
		"alg=strassen&n=4096&objective=min_energy_given_time&budget=100",
	} {
		code, body, _ := get(t, ts.URL+"/optimize?"+q)
		if code != 200 {
			t.Errorf("optimize?%s = %d %v", q, code, body)
			continue
		}
		if v, _ := body["mem_words"].(float64); !(v > 0) {
			t.Errorf("optimize?%s mem_words = %v", q, body["mem_words"])
		}
	}
}

func TestOptimizeInfeasible(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	// A nanosecond time budget for an n=65536 multiply cannot be met.
	code, body, _ := get(t, ts.URL+"/optimize?alg=matmul&n=65536&objective=min_energy_given_time&budget=1e-9")
	if code != 422 || body["error"] != "infeasible" {
		t.Errorf("infeasible optimize = %d %v, want 422 infeasible", code, body)
	}
}

func TestSimulateSummary(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	code, body, _ := get(t, ts.URL+"/simulate?alg=matmul25d&n=64&q=4&c=1")
	if code != 200 {
		t.Fatalf("simulate = %d %v", code, body)
	}
	if body["kind"] != "summary" || body["p"] != float64(16) {
		t.Errorf("summary = %v", body)
	}
	if v, _ := body["sim_time_s"].(float64); !(v > 0) {
		t.Errorf("sim_time_s = %v", body["sim_time_s"])
	}
	// Determinism: the same tuple must price identically (via cache or not).
	_, body2, _ := get(t, ts.URL+"/simulate?alg=matmul25d&n=64&q=4&c=1")
	if body2["total_energy_j"] != body["total_energy_j"] {
		t.Errorf("simulate not deterministic: %v vs %v", body2["total_energy_j"], body["total_energy_j"])
	}
}

// TestSimulateRuntimeParam drives /simulate through both simulator
// backends: ?runtime=event must answer with the same virtual time and
// energy as the goroutine default (the backends are pinned bitwise by the
// conformance suite), occupy its own cache entry, and reject unknown
// runtime names with a 400.
func TestSimulateRuntimeParam(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	code, gor, hdr := get(t, ts.URL+"/simulate?alg=matmul25d&n=64&q=4&c=1")
	if code != 200 {
		t.Fatalf("goroutine simulate = %d %v", code, gor)
	}
	if gor["runtime"] != "goroutine" {
		t.Errorf("default runtime = %v, want goroutine", gor["runtime"])
	}
	_ = hdr

	code, ev, hdr := get(t, ts.URL+"/simulate?alg=matmul25d&n=64&q=4&c=1&runtime=event")
	if code != 200 {
		t.Fatalf("event simulate = %d %v", code, ev)
	}
	if ev["runtime"] != "event" {
		t.Errorf("event runtime = %v", ev["runtime"])
	}
	// A distinct backend is a distinct canonical tuple: the event request
	// must not replay the goroutine run from the cache.
	if hdr.Get("X-Cache") != "miss" {
		t.Errorf("event request X-Cache = %q, want miss", hdr.Get("X-Cache"))
	}
	for _, field := range []string{"sim_time_s", "total_energy_j", "active_pairs"} {
		if ev[field] != gor[field] {
			t.Errorf("%s differs across backends: event %v vs goroutine %v", field, ev[field], gor[field])
		}
	}

	code, body, _ := get(t, ts.URL+"/simulate?n=64&q=4&runtime=fibers")
	if code != 400 || body["error"] != "bad_request" {
		t.Errorf("bad runtime = %d %v, want 400 bad_request", code, body)
	}
}

func TestSimulateValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, q := range []string{
		"n=65&q=4",           // q does not divide n
		"n=64&q=4&c=3",       // c does not divide q
		"n=64&q=0",           // non-positive grid
		"alg=bogus&n=64&q=4", // unknown algorithm
	} {
		code, body, _ := get(t, ts.URL+"/simulate?"+q)
		if code != 400 || body["error"] != "bad_request" {
			t.Errorf("simulate?%s = %d %v, want 400 bad_request", q, code, body)
		}
	}
}

func TestSimulateOversizedShed(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxSimRanks: 64, MaxSimN: 256})
	code, body, _ := get(t, ts.URL+"/simulate?n=128&q=16&c=1") // p = 256 > 64
	if code != 429 || body["error"] != "overloaded" || body["reason"] != "oversized" {
		t.Errorf("oversized simulate = %d %v, want 429 overloaded/oversized", code, body)
	}
	code, body, _ = get(t, ts.URL+"/simulate?n=512&q=8&c=1") // n > 256
	if code != 429 || body["reason"] != "oversized" {
		t.Errorf("oversized-n simulate = %d %v, want 429 oversized", code, body)
	}
}

func TestSimulateStream(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/simulate?n=32&q=2&stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var lines int
	var last map[string]any
	for sc.Scan() {
		lines++
		last = nil
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", lines, err, sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if lines < 10 {
		t.Errorf("stream produced %d lines, want event traffic", lines)
	}
	if last["kind"] != "summary" {
		t.Errorf("final line kind = %v, want summary", last["kind"])
	}
}

func TestDeadlineExpiresHeavyRequest(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	// Wedge the heavy lane body until the request deadline fires.
	s.testHeavyHold = func(ctx context.Context) { <-ctx.Done() }
	code, body, _ := get(t, ts.URL+"/simulate?n=32&q=2&deadline_ms=80")
	if code != 504 || body["error"] != "deadline" {
		t.Errorf("deadline simulate = %d %v, want 504 deadline", code, body)
	}
}

func TestPanicRecoveryMiddleware(t *testing.T) {
	s := New(Options{})
	h := s.managed("cheap", time.Second, func(ctx context.Context, w *statusWriter, req *http.Request) {
		panic("boom")
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != 500 {
		t.Fatalf("panicking handler = %d, want 500", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("panic response not JSON: %v", err)
	}
	if body["error"] != "internal" || !strings.Contains(body["detail"].(string), "boom") {
		t.Errorf("panic response = %v", body)
	}
	if snap := s.metrics.Snapshot(time.Now()); snap.Panics != 1 {
		t.Errorf("panics counter = %d, want 1", snap.Panics)
	}
}

func TestGracefulDrain(t *testing.T) {
	var sink bytes.Buffer
	s, ts := newTestServer(t, Options{MetricsSink: &sink, HeavyWorkers: 1})
	held := make(chan struct{})
	s.testHeavyHold = func(ctx context.Context) {
		close(held)
		<-ctx.Done()
	}
	type result struct {
		code int
		body map[string]any
	}
	heavyDone := make(chan result, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/simulate?n=32&q=2")
		if err != nil {
			heavyDone <- result{code: -1}
			return
		}
		defer resp.Body.Close()
		var m map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&m)
		heavyDone <- result{code: resp.StatusCode, body: m}
	}()
	<-held

	// Drain with a short grace period: the wedged request must be
	// force-cancelled, new work refused, and the metrics flushed.
	drainCtx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	snap, err := s.Drain(drainCtx)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}

	r := <-heavyDone
	if r.code != 504 {
		t.Errorf("wedged request after forced drain = %d %v, want 504", r.code, r.body)
	}
	if code, body, _ := get(t, ts.URL+"/price?alg=matmul&n=4096&p=64"); code != 503 || body["error"] != "draining" {
		t.Errorf("price while draining = %d %v, want 503 draining", code, body)
	}
	if code, _, _ := get(t, ts.URL+"/readyz"); code != 503 {
		t.Errorf("readyz while draining = %d, want 503", code)
	}
	if code, _, _ := get(t, ts.URL+"/healthz"); code != 200 {
		t.Errorf("healthz while draining = %d, want 200", code)
	}
	if s.InFlight() != 0 {
		t.Errorf("in-flight after drain = %d, want 0", s.InFlight())
	}
	if !strings.Contains(sink.String(), "lanes") {
		t.Errorf("metrics sink not flushed on drain: %q", sink.String())
	}
	// The forced cancel lands on the derived request context, so the
	// request counts as cancelled — its latency says nothing about the
	// server — not as a server-side timeout.
	if snap.Lanes["heavy"].Cancelled != 1 {
		t.Errorf("heavy cancelled = %d, want 1 (the force-cancelled request)", snap.Lanes["heavy"].Cancelled)
	}
}

// TestDeadlineExpiryCountsCancelled pins the accounting for ?deadline_ms:
// the timeout lives on the context derived inside the middleware, not on
// req.Context(), so the middleware must consult the derived context or it
// undercounts every deadline expiry.
func TestDeadlineExpiryCountsCancelled(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	s.testHeavyHold = func(ctx context.Context) { <-ctx.Done() }
	code, _, _ := get(t, ts.URL+"/simulate?n=32&q=2&deadline_ms=50")
	if code != 504 {
		t.Fatalf("expired simulate = %d, want 504", code)
	}
	snap := s.metrics.Snapshot(time.Now())
	if snap.Lanes["heavy"].Cancelled != 1 {
		t.Errorf("heavy cancelled = %d, want 1 (deadline_ms expiry)", snap.Lanes["heavy"].Cancelled)
	}
	if snap.Lanes["heavy"].TimedOut != 0 {
		t.Errorf("heavy timed_out = %d, want 0", snap.Lanes["heavy"].TimedOut)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	get(t, ts.URL+"/price?alg=matmul&n=4096&p=64")
	get(t, ts.URL+"/price?alg=matmul&n=4096&p=64")
	code, body, _ := get(t, ts.URL+"/metricsz")
	if code != 200 {
		t.Fatalf("metricsz = %d", code)
	}
	lanes, _ := body["lanes"].(map[string]any)
	cheap, _ := lanes["cheap"].(map[string]any)
	if served, _ := cheap["served"].(float64); served != 2 {
		t.Errorf("cheap served = %v, want 2", cheap["served"])
	}
	if hits, _ := body["cache_hits"].(float64); hits != 1 {
		t.Errorf("cache_hits = %v, want 1", body["cache_hits"])
	}
}

func TestDeadlineMsValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	code, body, _ := get(t, ts.URL+"/price?alg=matmul&n=4096&p=64&deadline_ms=potato")
	if code != 400 || body["error"] != "bad_request" {
		t.Errorf("bad deadline_ms = %d %v, want 400", code, body)
	}
}

func ExampleServer() {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/price?alg=nbody&n=1000000&p=100")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer resp.Body.Close()
	var m map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&m)
	fmt.Println(resp.StatusCode, m["alg"])
	// Output: 200 nbody
}
