// Package serve is the hardened HTTP/JSON query service over the paper's
// co-design model: closed-form pricing (Eqs. 1–2) and optimization on a
// cheap lane, live deterministic simulations on a tightly bounded heavy
// lane. The robustness machinery is the point of the package:
//
//   - per-request deadlines whose context cancellation is threaded into
//     internal/sim, so an abandoned simulation stops burning CPU;
//   - two-lane admission control with bounded queues that sheds heavy work
//     with a typed 429 + Retry-After before it can starve cheap queries;
//   - singleflight coalescing and a content-addressed LRU over the
//     canonical query tuple (every answer is deterministic);
//   - panic recovery returning structured errors, and graceful drain:
//     stop accepting, finish or cancel in-flight by deadline, flush
//     metrics.
//
// See docs/SERVE.md for the endpoint reference and an example session.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"perfscale/internal/machine"
)

// Options configures a Server. The zero value serves the simdefault
// machine with conservative capacity bounds; any field left zero keeps its
// default. Negative queue sizes mean "no queue" (shed when all workers are
// busy).
type Options struct {
	// Machine is the default machine model for requests that do not name a
	// preset. Zero value means machine.SimDefault().
	Machine machine.Params

	// CheapWorkers/CheapQueue bound the closed-form lane (/price,
	// /optimize). Defaults: 2·GOMAXPROCS workers, 256 queued.
	CheapWorkers int
	CheapQueue   int
	// HeavyWorkers/HeavyQueue bound the simulation lane (/simulate).
	// Defaults: 2 workers, 2 queued — live simulations burn a goroutine
	// per rank, so the pool stays small.
	HeavyWorkers int
	HeavyQueue   int

	// CheapDeadline and HeavyDeadline are the default per-request
	// deadlines (2s and 30s); a request may lower or raise its own with
	// ?deadline_ms=, capped at MaxDeadline (120s).
	CheapDeadline time.Duration
	HeavyDeadline time.Duration
	MaxDeadline   time.Duration

	// MaxSimRanks and MaxSimN shed oversized /simulate requests at the
	// door with a typed 429: p = q²·c above MaxSimRanks (default 1024) or
	// n above MaxSimN (default 4096) will never be admitted.
	MaxSimRanks int
	MaxSimN     int

	// CacheEntries bounds the response LRU (default 1024 entries).
	CacheEntries int

	// MetricsSink receives the final metrics snapshot (JSON) when the
	// server drains. Nil discards it.
	MetricsSink io.Writer
}

func (o Options) withDefaults() Options {
	if o.Machine.Name == "" {
		o.Machine = machine.SimDefault()
	}
	if o.CheapWorkers == 0 {
		o.CheapWorkers = 2 * runtime.GOMAXPROCS(0)
	}
	if o.CheapQueue == 0 {
		o.CheapQueue = 256
	}
	if o.HeavyWorkers == 0 {
		o.HeavyWorkers = 2
	}
	if o.HeavyQueue == 0 {
		o.HeavyQueue = 2
	}
	if o.CheapDeadline == 0 {
		o.CheapDeadline = 2 * time.Second
	}
	if o.HeavyDeadline == 0 {
		o.HeavyDeadline = 30 * time.Second
	}
	if o.MaxDeadline == 0 {
		o.MaxDeadline = 120 * time.Second
	}
	if o.MaxSimRanks == 0 {
		o.MaxSimRanks = 1024
	}
	if o.MaxSimN == 0 {
		o.MaxSimN = 4096
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 1024
	}
	return o
}

// Server is the query service. Create with New, expose via Handler, stop
// with Drain.
type Server struct {
	opts    Options
	mux     *http.ServeMux
	cheap   *lane
	heavy   *lane
	cache   *queryCache
	metrics *Metrics

	// draining is set once; after that managed endpoints refuse new work.
	// mu guards the in-flight registry against a drain racing admission.
	draining atomic.Bool
	mu       sync.Mutex
	wg       sync.WaitGroup
	inflight map[int64]context.CancelFunc
	nextID   int64

	// testHeavyHold, when set by a test, runs inside the heavy lane while
	// holding a worker slot — the deterministic way to wedge the lane at
	// capacity in the saturation test.
	testHeavyHold func(ctx context.Context)
}

// New creates a Server with opts (zero fields take defaults).
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:     opts,
		cheap:    newLane("cheap", opts.CheapWorkers, opts.CheapQueue),
		heavy:    newLane("heavy", opts.HeavyWorkers, opts.HeavyQueue),
		cache:    newQueryCache(opts.CacheEntries),
		metrics:  newMetrics(time.Now()),
		inflight: make(map[int64]context.CancelFunc),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metricsz", s.handleMetricsz)
	s.mux.Handle("/price", s.managed("cheap", s.opts.CheapDeadline, s.handlePrice))
	s.mux.Handle("/optimize", s.managed("cheap", s.opts.CheapDeadline, s.handleOptimize))
	s.mux.Handle("/simulate", s.managed("heavy", s.opts.HeavyDeadline, s.handleSimulate))
	return s
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the server's counters (for tests and cmd/bench).
func (s *Server) Metrics() *Metrics { return s.metrics }

// apiError is the structured error body every failure path returns.
type apiError struct {
	// Status is the HTTP status (not serialized).
	Status int `json:"-"`
	// Code is a stable machine-readable cause: bad_request, overloaded,
	// deadline, infeasible, draining, sim_failed, internal.
	Code        string `json:"error"`
	Detail      string `json:"detail,omitempty"`
	Lane        string `json:"lane,omitempty"`
	Reason      string `json:"reason,omitempty"`
	RetryAfterS int    `json:"retry_after_s,omitempty"`
}

func badRequest(format string, args ...any) *apiError {
	return &apiError{Status: http.StatusBadRequest, Code: "bad_request", Detail: fmt.Sprintf(format, args...)}
}

// statusWriter records the response status for metrics and forwards
// Flush for streaming endpoints.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.code = http.StatusOK
		w.wrote = true
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) status() int {
	if !w.wrote {
		return http.StatusOK
	}
	return w.code
}

// Flush forwards to the underlying writer so NDJSON streams go out as they
// are produced.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// writeJSON renders v with status; encoding problems fall back to a 500.
func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"internal","detail":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(b, '\n')) // a failed write means the client left
}

func writeAPIError(w http.ResponseWriter, e *apiError) {
	if e.RetryAfterS > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfterS))
	}
	writeJSON(w, e.Status, e)
}

// queryHandler is an endpoint body run under the managed middleware.
type queryHandler func(ctx context.Context, w *statusWriter, req *http.Request)

// managed wraps an endpoint with the robustness middleware: panic
// recovery, drain refusal, in-flight tracking, the per-request deadline
// and outcome metrics.
func (s *Server) managed(laneName string, defaultDeadline time.Duration, h queryHandler) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		start := time.Now()
		w := &statusWriter{ResponseWriter: rw}
		cancelled := false
		defer func() {
			if rec := recover(); rec != nil {
				s.metrics.recordPanic()
				if !w.wrote {
					writeAPIError(w, &apiError{
						Status: http.StatusInternalServerError,
						Code:   "internal",
						Detail: fmt.Sprintf("handler panicked: %v", rec),
					})
				}
			}
			s.metrics.record(laneName, w.status(), time.Since(start), cancelled)
		}()

		deadline := defaultDeadline
		if raw := req.URL.Query().Get("deadline_ms"); raw != "" {
			ms, err := strconv.Atoi(raw)
			if err != nil || ms <= 0 {
				writeAPIError(w, badRequest("deadline_ms must be a positive integer, got %q", raw))
				return
			}
			deadline = time.Duration(ms) * time.Millisecond
		}
		if deadline > s.opts.MaxDeadline {
			deadline = s.opts.MaxDeadline
		}
		ctx, cancel := context.WithTimeout(req.Context(), deadline)
		defer cancel()

		id, ok := s.track(cancel)
		if !ok {
			writeAPIError(w, &apiError{
				Status: http.StatusServiceUnavailable,
				Code:   "draining",
				Detail: "server is draining; not accepting new work",
			})
			return
		}
		defer s.untrack(id)

		h(ctx, w, req)
		// The ?deadline_ms timeout lives on the derived ctx, not on
		// req.Context(), so checking the request context here missed every
		// deadline expiry and undercounted cancellations.
		if ctx.Err() != nil {
			cancelled = true
		}
	})
}

// track registers a request's cancel func for forced drain; it refuses
// (ok=false) once draining has begun.
func (s *Server) track(cancel context.CancelFunc) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining.Load() {
		return 0, false
	}
	s.nextID++
	id := s.nextID
	s.inflight[id] = cancel
	s.wg.Add(1)
	return id, true
}

func (s *Server) untrack(id int64) {
	s.mu.Lock()
	delete(s.inflight, id)
	s.mu.Unlock()
	s.wg.Done()
}

// InFlight reports the number of tracked requests (for tests).
func (s *Server) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.inflight)
}

// Drain gracefully stops the server: new managed requests are refused with
// a 503, in-flight requests are given until ctx expires to finish, then
// their contexts are cancelled — which aborts any running simulations —
// and Drain waits for them to unwind. The final metrics snapshot is
// written to Options.MetricsSink (if set) and returned; the error reports
// a sink write failure.
func (s *Server) Drain(ctx context.Context) (Snapshot, error) {
	s.mu.Lock()
	s.draining.Store(true)
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for _, cancel := range s.inflight {
			cancel()
		}
		s.mu.Unlock()
		<-done
	}

	snap := s.metrics.Snapshot(time.Now())
	if s.opts.MetricsSink != nil {
		enc := json.NewEncoder(s.opts.MetricsSink)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			return snap, fmt.Errorf("serve: flushing metrics on drain: %w", err)
		}
	}
	return snap, nil
}

// handleHealthz reports process liveness: 200 for as long as the process
// can answer at all, draining or not.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz reports readiness for NEW work: 503 once draining, so load
// balancers stop routing before the listener closes.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":       "ready",
		"cheap_queued": s.cheap.queued(),
		"heavy_queued": s.heavy.queued(),
	})
}

func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.Snapshot(time.Now())
	// Prometheus scrape: explicit ?format=prom, or an Accept header that
	// asks for the text exposition format. JSON stays the default for
	// humans and the existing tooling.
	if r.URL.Query().Get("format") == "prom" ||
		strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") ||
		strings.Contains(r.Header.Get("Accept"), "text/plain; version=0.0.4") {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		if err := snap.WriteProm(w); err != nil {
			// Headers are gone; nothing to do but drop the connection.
			return
		}
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// runLane is the common fill path for cached endpoints: admit into the
// lane, re-check the deadline, compute, render. Every refusal renders as a
// typed error response.
func (s *Server) runLane(ctx context.Context, l *lane, compute func() (any, *apiError)) cachedResponse {
	release, err := l.admit(ctx)
	if err != nil {
		if oe, ok := err.(*OverloadError); ok {
			return renderError(&apiError{
				Status: http.StatusTooManyRequests, Code: "overloaded",
				Detail: oe.Detail, Lane: oe.Lane, Reason: oe.Reason,
				RetryAfterS: oe.RetryAfterS,
			})
		}
		return renderError(deadlineError(err))
	}
	defer release()
	start := time.Now()
	defer func() { l.observeService(time.Since(start).Seconds()) }()
	if l == s.heavy && s.testHeavyHold != nil {
		s.testHeavyHold(ctx)
	}
	if err := ctx.Err(); err != nil {
		return renderError(deadlineError(err))
	}
	v, aerr := compute()
	if aerr != nil {
		return renderError(aerr)
	}
	return renderJSON(http.StatusOK, v)
}

func deadlineError(err error) *apiError {
	return &apiError{
		Status: http.StatusGatewayTimeout,
		Code:   "deadline",
		Detail: fmt.Sprintf("request abandoned before completion: %v", err),
	}
}

// renderJSON materializes a response body for the cache.
func renderJSON(status int, v any) cachedResponse {
	b, err := json.Marshal(v)
	if err != nil {
		return renderError(&apiError{Status: http.StatusInternalServerError, Code: "internal", Detail: "response encoding failed"})
	}
	return cachedResponse{
		status:      status,
		contentType: "application/json",
		body:        append(b, '\n'),
		cacheable:   status == http.StatusOK,
	}
}

func renderError(e *apiError) cachedResponse {
	b, _ := json.Marshal(e)
	resp := cachedResponse{status: e.Status, contentType: "application/json", body: append(b, '\n')}
	if e.RetryAfterS > 0 {
		resp.retryAfterS = e.RetryAfterS
	}
	return resp
}

// replay writes a rendered response, marking how the cache resolved it.
func replay(w http.ResponseWriter, resp cachedResponse, state cacheState) {
	w.Header().Set("Content-Type", resp.contentType)
	switch state {
	case cacheHit:
		w.Header().Set("X-Cache", "hit")
	case cacheCoalesced:
		w.Header().Set("X-Cache", "coalesced")
	default:
		w.Header().Set("X-Cache", "miss")
	}
	if resp.retryAfterS > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(resp.retryAfterS))
	}
	w.WriteHeader(resp.status)
	_, _ = w.Write(resp.body) // a failed write means the client left
}

// cachedQuery funnels an endpoint through the cache + singleflight + lane
// pipeline and writes the outcome.
func (s *Server) cachedQuery(ctx context.Context, w *statusWriter, l *lane, key string, compute func() (any, *apiError)) {
	resp, state, err := s.cache.do(ctx, key, func() cachedResponse {
		return s.runLane(ctx, l, compute)
	})
	s.metrics.recordCache(state)
	if err != nil {
		writeAPIError(w, deadlineError(err))
		return
	}
	replay(w, resp, state)
}
