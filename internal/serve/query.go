package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"perfscale/internal/bounds"
	"perfscale/internal/core"
	"perfscale/internal/machine"
	"perfscale/internal/matmul"
	"perfscale/internal/matrix"
	"perfscale/internal/nbody"
	"perfscale/internal/obs"
	"perfscale/internal/opt"
	"perfscale/internal/sim"
)

// Query endpoints. All three accept GET with URL parameters (curl-friendly;
// see docs/SERVE.md) and answer JSON. Every query is a pure function of its
// parameters, which is what makes the cache and coalescing in cache.go
// sound.

// param helpers ------------------------------------------------------------

func parseFloat(q url.Values, name string, def float64) (float64, *apiError) {
	raw := q.Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, badRequest("parameter %s must be a finite number, got %q", name, raw)
	}
	return v, nil
}

func parseInt(q url.Values, name string, def int) (int, *apiError) {
	raw := q.Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, badRequest("parameter %s must be an integer, got %q", name, raw)
	}
	return v, nil
}

func parseBool(q url.Values, name string) bool {
	switch q.Get(name) {
	case "1", "true", "yes":
		return true
	}
	return false
}

// resolveMachine maps the ?machine= parameter to a preset. Only preset
// names are accepted over HTTP — never file paths.
func (s *Server) resolveMachine(q url.Values) (machine.Params, *apiError) {
	name := q.Get("machine")
	if name == "" {
		return s.opts.Machine, nil
	}
	m, err := machine.ByName(name)
	if err != nil {
		return machine.Params{}, badRequest("%v", err)
	}
	return m, nil
}

// /price -------------------------------------------------------------------

// priceResponse is the closed-form evaluation of one (machine, alg, n, p,
// M) point: Eqs. 1 and 2 split by source.
type priceResponse struct {
	Machine string  `json:"machine"`
	Alg     string  `json:"alg"`
	N       float64 `json:"n"`
	P       float64 `json:"p"`
	Mem     float64 `json:"mem_words"`

	Flops float64 `json:"flops_per_proc"`
	Words float64 `json:"words_per_proc"`
	Msgs  float64 `json:"msgs_per_proc"`

	Time        core.TimeBreakdown   `json:"time_breakdown_s"`
	TotalTimeS  float64              `json:"total_time_s"`
	Energy      core.EnergyBreakdown `json:"energy_breakdown_j"`
	TotalEnergy float64              `json:"total_energy_j"`

	AvgPowerW     float64 `json:"avg_power_w"`
	PowerPerProcW float64 `json:"power_per_proc_w"`
	GFLOPSPerWatt float64 `json:"gflops_per_watt"`
}

func (s *Server) handlePrice(ctx context.Context, w *statusWriter, req *http.Request) {
	q := req.URL.Query()
	m, aerr := s.resolveMachine(q)
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	alg := q.Get("alg")
	n, aerr := parseFloat(q, "n", 0)
	if aerr == nil && !(n > 0) {
		aerr = badRequest("parameter n must be positive")
	}
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	p, aerr := parseFloat(q, "p", 0)
	if aerr == nil && !(p > 0) {
		aerr = badRequest("parameter p must be positive")
	}
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	mem, aerr := parseFloat(q, "mem", 0)
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	omega, aerr := parseFloat(q, "omega", bounds.OmegaStrassen)
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	fpp, aerr := parseFloat(q, "flops_per_pair", nbody.FlopsPerPair)
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	tree := parseBool(q, "tree")

	key := fmt.Sprintf("price|m=%s|alg=%s|n=%g|p=%g|mem=%g|omega=%g|fpp=%g|tree=%t",
		m.Name, alg, n, p, mem, omega, fpp, tree)
	s.cachedQuery(ctx, w, s.cheap, key, func() (any, *apiError) {
		res, aerr := evalPrice(m, alg, n, p, mem, omega, fpp, tree)
		if aerr != nil {
			return nil, aerr
		}
		return &priceResponse{
			Machine: m.Name, Alg: alg, N: n, P: res.P, Mem: res.Mem,
			Flops: res.Costs.Flops, Words: res.Costs.Words, Msgs: res.Costs.Msgs,
			Time: res.Time, TotalTimeS: res.TotalTime(),
			Energy: res.Energy, TotalEnergy: res.TotalEnergy(),
			AvgPowerW: res.AvgPower(), PowerPerProcW: res.PowerPerProcessor(),
			GFLOPSPerWatt: res.GFLOPSPerWatt(),
		}, nil
	})
}

// evalPrice dispatches to the closed-form evaluator for alg, filling in
// the maximum legal replication memory when mem is omitted.
func evalPrice(m machine.Params, alg string, n, p, mem, omega, fpp float64, tree bool) (core.Result, *apiError) {
	switch alg {
	case "matmul":
		if mem == 0 {
			mem = n * n / math.Pow(p, 2.0/3.0) // 3D limit, the paper's c = p^(1/3)
		}
		if err := core.CheckMatMulRange(n, p, mem); err != nil {
			return core.Result{}, badRequest("%v", err)
		}
		return core.MatMulClassical(m, n, p, mem), nil
	case "strassen":
		if mem == 0 {
			mem = n * n / math.Pow(p, 2.0/omega)
		}
		if mem*p < n*n {
			return core.Result{}, badRequest("mem %g too small: p·M must hold the inputs (n² = %g)", mem, n*n)
		}
		return core.FastMatMul(m, n, p, mem, omega), nil
	case "lu":
		if mem == 0 {
			mem = n * n / math.Pow(p, 2.0/3.0)
		}
		if err := core.CheckMatMulRange(n, p, mem); err != nil {
			return core.Result{}, badRequest("%v", err)
		}
		return core.LU(m, n, p, mem), nil
	case "nbody":
		if mem == 0 {
			mem = n / math.Sqrt(p) // c = √p, the paper's maximum replication
		}
		if err := core.CheckNBodyRange(n, p, mem); err != nil {
			return core.Result{}, badRequest("%v", err)
		}
		return core.NBody(m, n, p, mem, fpp), nil
	case "fft":
		return core.FFT(m, n, p, tree), nil
	case "":
		return core.Result{}, badRequest("parameter alg is required (matmul, strassen, lu, nbody, fft)")
	default:
		return core.Result{}, badRequest("unknown alg %q (want matmul, strassen, lu, nbody, fft)", alg)
	}
}

// /optimize ----------------------------------------------------------------

// optimizeResponse reports the optimizer's pick for one objective.
type optimizeResponse struct {
	Machine   string  `json:"machine"`
	Alg       string  `json:"alg"`
	N         float64 `json:"n"`
	Objective string  `json:"objective"`
	Budget    float64 `json:"budget,omitempty"`

	P        float64 `json:"p,omitempty"`
	MemWords float64 `json:"mem_words"`
	EnergyJ  float64 `json:"energy_j,omitempty"`
	TimeS    float64 `json:"time_s,omitempty"`

	// Note documents objective-specific caveats (e.g. min_energy holds
	// for every p inside the perfect-strong-scaling range).
	Note string `json:"note,omitempty"`
}

func (s *Server) handleOptimize(ctx context.Context, w *statusWriter, req *http.Request) {
	q := req.URL.Query()
	m, aerr := s.resolveMachine(q)
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	alg := q.Get("alg")
	objective := q.Get("objective")
	n, aerr := parseFloat(q, "n", 0)
	if aerr == nil && !(n > 0) {
		aerr = badRequest("parameter n must be positive")
	}
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	budget, aerr := parseFloat(q, "budget", 0)
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	omega, aerr := parseFloat(q, "omega", 0)
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	fpp, aerr := parseFloat(q, "flops_per_pair", nbody.FlopsPerPair)
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}

	key := fmt.Sprintf("optimize|m=%s|alg=%s|n=%g|obj=%s|budget=%g|omega=%g|fpp=%g",
		m.Name, alg, n, objective, budget, omega, fpp)
	s.cachedQuery(ctx, w, s.cheap, key, func() (any, *apiError) {
		return evalOptimize(m, alg, objective, n, budget, omega, fpp)
	})
}

// evalOptimize dispatches to internal/opt. Objectives taking a budget
// require it positive; ErrInfeasible maps to HTTP 422.
func evalOptimize(m machine.Params, alg, objective string, n, budget, omega, fpp float64) (any, *apiError) {
	resp := &optimizeResponse{Machine: m.Name, Alg: alg, N: n, Objective: objective, Budget: budget}
	needBudget := func() *apiError {
		if !(budget > 0) {
			return badRequest("objective %s requires a positive budget parameter", objective)
		}
		return nil
	}
	mapErr := func(err error) *apiError {
		if errors.Is(err, opt.ErrInfeasible) {
			return &apiError{Status: http.StatusUnprocessableEntity, Code: "infeasible",
				Detail: fmt.Sprintf("budget %g cannot be met: %v", budget, err)}
		}
		return &apiError{Status: http.StatusInternalServerError, Code: "internal", Detail: err.Error()}
	}

	switch alg {
	case "nbody":
		pb := opt.NBody{M: m, N: n, F: fpp}
		switch objective {
		case "min_energy":
			mem := pb.OptimalMemory()
			pLo, pHi := pb.MinEnergyProcRange()
			resp.MemWords = mem
			resp.EnergyJ = pb.MinEnergy()
			resp.Note = fmt.Sprintf("energy is p-independent across the perfect-strong-scaling range p ∈ [%.4g, %.4g]", pLo, pHi)
		case "min_energy_given_time":
			if aerr := needBudget(); aerr != nil {
				return nil, aerr
			}
			cfg, e, err := pb.MinEnergyGivenTime(budget)
			if err != nil {
				return nil, mapErr(err)
			}
			resp.P, resp.MemWords, resp.EnergyJ, resp.TimeS = cfg.P, cfg.Mem, e, budget
		case "min_time_given_energy":
			if aerr := needBudget(); aerr != nil {
				return nil, aerr
			}
			cfg, t, err := pb.MinTimeGivenEnergy(budget)
			if err != nil {
				return nil, mapErr(err)
			}
			resp.P, resp.MemWords, resp.TimeS, resp.EnergyJ = cfg.P, cfg.Mem, t, budget
		case "min_energy_given_power":
			if aerr := needBudget(); aerr != nil {
				return nil, aerr
			}
			mem, e, err := pb.MinEnergyGivenProcPower(budget)
			if err != nil {
				return nil, mapErr(err)
			}
			resp.MemWords, resp.EnergyJ = mem, e
			resp.Note = "budget is watts per processor; p is free inside the feasible range"
		default:
			return nil, badObjective(objective)
		}
	case "matmul", "strassen":
		if alg == "strassen" && omega == 0 {
			omega = bounds.OmegaStrassen
		}
		pb := opt.MatMul{M: m, N: n, Omega: omega}
		switch objective {
		case "min_energy":
			mem := pb.OptimalMemory()
			resp.MemWords = mem
			resp.EnergyJ = pb.MinEnergy()
			resp.Note = fmt.Sprintf("energy is p-independent for p ∈ [n²/M, %s]; pick p for the time you need", "PMax(M)")
		case "min_energy_given_time":
			if aerr := needBudget(); aerr != nil {
				return nil, aerr
			}
			cfg, e, err := pb.MinEnergyGivenTime(budget)
			if err != nil {
				return nil, mapErr(err)
			}
			resp.P, resp.MemWords, resp.EnergyJ, resp.TimeS = cfg.P, cfg.Mem, e, budget
		case "min_time_given_energy":
			if aerr := needBudget(); aerr != nil {
				return nil, aerr
			}
			cfg, t, err := pb.MinTimeGivenEnergy(budget)
			if err != nil {
				return nil, mapErr(err)
			}
			resp.P, resp.MemWords, resp.TimeS, resp.EnergyJ = cfg.P, cfg.Mem, t, budget
		default:
			return nil, badObjective(objective)
		}
	case "":
		return nil, badRequest("parameter alg is required (nbody, matmul, strassen)")
	default:
		return nil, badRequest("unknown alg %q for /optimize (want nbody, matmul, strassen)", alg)
	}
	return resp, nil
}

func badObjective(objective string) *apiError {
	if objective == "" {
		return badRequest("parameter objective is required (min_energy, min_energy_given_time, min_time_given_energy, min_energy_given_power)")
	}
	return badRequest("unknown objective %q", objective)
}

// /simulate ----------------------------------------------------------------

// simulateQuery is the canonical tuple of one live run.
type simulateQuery struct {
	m       machine.Params
	alg     string
	n       int
	q       int
	c       int
	seed    int
	runtime sim.Runtime
	stream  bool
}

func (sq simulateQuery) ranks() int { return sq.q * sq.q * sq.c }

// The runtime is part of the key even though both backends are pinned to
// bitwise-identical Results: keeping the tuples distinct means a cached
// goroutine answer can never mask an event-backend regression (and vice
// versa) from a client explicitly probing one backend.
func (sq simulateQuery) key() string {
	return fmt.Sprintf("simulate|m=%s|alg=%s|n=%d|q=%d|c=%d|seed=%d|rt=%s",
		sq.m.Name, sq.alg, sq.n, sq.q, sq.c, sq.seed, sq.runtime)
}

// simulateResponse is the summary of a bounded live run: measured virtual
// time, the busiest rank's counters and the priced energy.
type simulateResponse struct {
	Kind    string `json:"kind"` // "summary", so stream consumers can spot it
	Machine string `json:"machine"`
	Alg     string `json:"alg"`
	N       int    `json:"n"`
	Q       int    `json:"q"`
	C       int    `json:"c"`
	P       int    `json:"p"`
	Seed    int    `json:"seed"`
	Runtime string `json:"runtime"`

	SimTimeS    float64              `json:"sim_time_s"`
	MaxStats    sim.Stats            `json:"max_stats"`
	Energy      core.EnergyBreakdown `json:"energy_breakdown_j"`
	TotalEnergy float64              `json:"total_energy_j"`
	ActivePairs int                  `json:"active_pairs"`
	WallMS      float64              `json:"wall_ms"`
}

func (s *Server) parseSimulate(req *http.Request) (simulateQuery, *apiError) {
	q := req.URL.Query()
	var sq simulateQuery
	m, aerr := s.resolveMachine(q)
	if aerr != nil {
		return sq, aerr
	}
	sq.m = m
	sq.alg = q.Get("alg")
	if sq.alg == "" {
		sq.alg = "matmul25d"
	}
	if sq.alg != "matmul25d" && sq.alg != "summa25d" {
		return sq, badRequest("unknown alg %q for /simulate (want matmul25d, summa25d)", sq.alg)
	}
	if sq.n, aerr = parseInt(q, "n", 0); aerr != nil {
		return sq, aerr
	}
	if sq.q, aerr = parseInt(q, "q", 0); aerr != nil {
		return sq, aerr
	}
	if sq.c, aerr = parseInt(q, "c", 1); aerr != nil {
		return sq, aerr
	}
	if sq.seed, aerr = parseInt(q, "seed", 1); aerr != nil {
		return sq, aerr
	}
	switch rt := q.Get("runtime"); rt {
	case "", "goroutine":
		sq.runtime = sim.RuntimeGoroutine
	case "event":
		sq.runtime = sim.RuntimeEvent
	default:
		return sq, badRequest("unknown runtime %q for /simulate (want goroutine, event)", rt)
	}
	sq.stream = parseBool(q, "stream")
	if sq.n <= 0 || sq.q <= 0 || sq.c <= 0 {
		return sq, badRequest("n, q and c must be positive (got n=%d q=%d c=%d)", sq.n, sq.q, sq.c)
	}
	if sq.n%sq.q != 0 {
		return sq, badRequest("grid size q=%d must divide n=%d", sq.q, sq.n)
	}
	if sq.q%sq.c != 0 {
		return sq, badRequest("replication c=%d must divide q=%d", sq.c, sq.q)
	}
	return sq, nil
}

// checkSimSize enforces the admission size limits: a request that exceeds
// them is shed with the same typed 429 as a full queue, because no amount
// of retrying at this size will ever be admitted... except Retry-After is
// omitted — the caller must shrink the request instead.
func (s *Server) checkSimSize(sq simulateQuery) *apiError {
	if p := sq.ranks(); p > s.opts.MaxSimRanks {
		return &apiError{
			Status: http.StatusTooManyRequests, Code: "overloaded",
			Lane: "heavy", Reason: "oversized",
			Detail: fmt.Sprintf("p = q²·c = %d exceeds the server's limit of %d simulated ranks", p, s.opts.MaxSimRanks),
		}
	}
	if sq.n > s.opts.MaxSimN {
		return &apiError{
			Status: http.StatusTooManyRequests, Code: "overloaded",
			Lane: "heavy", Reason: "oversized",
			Detail: fmt.Sprintf("n = %d exceeds the server's limit of %d", sq.n, s.opts.MaxSimN),
		}
	}
	return nil
}

// runSimulate executes the run with ctx threaded into the rank runtime, so
// an expired deadline or a vanished client stops the simulation itself.
func runSimulate(ctx context.Context, sq simulateQuery, observers []sim.Observer) (*simulateResponse, *apiError) {
	cost := sim.Cost{
		GammaT:      sq.m.GammaT,
		BetaT:       sq.m.BetaT,
		AlphaT:      sq.m.AlphaT,
		MaxMsgWords: int(sq.m.MaxMsgWords),
		Observers:   observers,
		Context:     ctx,
		Runtime:     sq.runtime,
	}
	a := matrix.Random(sq.n, sq.n, int64(sq.seed))
	b := matrix.Random(sq.n, sq.n, int64(sq.seed)+1)
	start := time.Now()
	var rr *matmul.RunResult
	var err error
	switch sq.alg {
	case "summa25d":
		rr, err = matmul.TwoPointFiveDSUMMA(cost, sq.q, sq.c, a, b)
	default:
		rr, err = matmul.TwoPointFiveD(cost, sq.q, sq.c, a, b)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, deadlineError(err)
		}
		return nil, &apiError{Status: http.StatusInternalServerError, Code: "sim_failed", Detail: err.Error()}
	}
	energy := core.PriceSim(sq.m, rr.Sim)
	return &simulateResponse{
		Kind: "summary", Machine: sq.m.Name, Alg: sq.alg,
		N: sq.n, Q: sq.q, C: sq.c, P: sq.ranks(), Seed: sq.seed,
		Runtime:  sq.runtime.String(),
		SimTimeS: rr.Sim.Time(), MaxStats: rr.Sim.MaxStats(),
		Energy: energy, TotalEnergy: energy.Total(),
		ActivePairs: rr.Sim.ActivePairs,
		WallMS:      float64(time.Since(start)) / float64(time.Millisecond),
	}, nil
}

func (s *Server) handleSimulate(ctx context.Context, w *statusWriter, req *http.Request) {
	sq, aerr := s.parseSimulate(req)
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	if aerr := s.checkSimSize(sq); aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	if sq.stream {
		s.streamSimulate(ctx, w, sq)
		return
	}
	s.cachedQuery(ctx, w, s.heavy, sq.key(), func() (any, *apiError) {
		return runSimulate(ctx, sq, nil)
	})
}

// streamSimulate runs the simulation with a JSONL observer writing events
// straight to the response as NDJSON, finishing with one summary (or
// error) line. Streams bypass the cache — each one is live — but still go
// through heavy-lane admission.
func (s *Server) streamSimulate(ctx context.Context, w *statusWriter, sq simulateQuery) {
	release, err := s.heavy.admit(ctx)
	if err != nil {
		if oe, ok := err.(*OverloadError); ok {
			writeAPIError(w, &apiError{
				Status: http.StatusTooManyRequests, Code: "overloaded",
				Detail: oe.Detail, Lane: oe.Lane, Reason: oe.Reason,
				RetryAfterS: oe.RetryAfterS,
			})
			return
		}
		writeAPIError(w, deadlineError(err))
		return
	}
	defer release()
	start := time.Now()
	defer func() { s.heavy.observeService(time.Since(start).Seconds()) }()
	if s.testHeavyHold != nil {
		s.testHeavyHold(ctx)
	}
	if err := ctx.Err(); err != nil {
		writeAPIError(w, deadlineError(err))
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fw := &flushWriter{w: w}
	jw := obs.NewJSONLWriter(fw)
	resp, aerr := runSimulate(ctx, sq, []sim.Observer{jw})
	_ = jw.Flush() // a stream write failure means the client left
	if aerr != nil {
		// The status line is gone; report the failure in-band as the
		// final NDJSON record.
		aerr.Status = 0
		writeNDJSONLine(fw, map[string]any{"kind": "error", "error": aerr.Code, "detail": aerr.Detail})
		return
	}
	writeNDJSONLine(fw, resp)
}

// flushWriter pushes every write through to the client so event lines
// stream out as the simulation produces them.
type flushWriter struct {
	w *statusWriter
}

func (fw *flushWriter) Write(b []byte) (int, error) {
	n, err := fw.w.Write(b)
	fw.w.Flush()
	return n, err
}

func writeNDJSONLine(fw *flushWriter, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	_, _ = fw.Write(append(b, '\n'))
}
