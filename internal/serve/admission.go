package serve

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
)

// Admission control.
//
// Requests are classified into two lanes at the door:
//
//   - cheap: closed-form evaluations (/price, /optimize) — microseconds of
//     arithmetic, bounded only to survive request floods;
//   - heavy: live simulations (/simulate) — seconds of real CPU across p
//     goroutines, bounded tightly so they can never starve the cheap lane.
//
// Each lane is a bounded worker pool: at most Workers requests execute at
// once and at most Queue more wait for a slot. A request that finds the
// queue full is shed immediately with a typed 429 and a Retry-After hint —
// degrading loudly at the door instead of queueing into timeout collapse.
// Because the lanes are independent, a saturated heavy lane leaves cheap
// throughput untouched; the saturation test pins exactly that property.

// OverloadError is the typed refusal admission control returns when a
// lane's queue is full (or a request exceeds the server's size limits, see
// Options.MaxSimRanks). It maps to HTTP 429 with a Retry-After header.
type OverloadError struct {
	// Lane is the lane that refused the work.
	Lane string
	// Reason is "queue_full" or "oversized".
	Reason string
	// RetryAfterS is the suggested back-off in whole seconds (zero for
	// oversized requests, which will never fit).
	RetryAfterS int
	// Detail is a human-readable explanation.
	Detail string
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: %s lane overloaded (%s): %s", e.Lane, e.Reason, e.Detail)
}

// lane is one bounded worker pool with a shedding queue.
type lane struct {
	name     string
	slots    chan struct{} // buffered to the worker count
	maxQueue int64
	waiting  atomic.Int64 // requests holding a queue position

	// avgServiceS is a coarse EWMA of recent service times in seconds,
	// only used to size the Retry-After hint.
	avgServiceS atomic.Uint64 // math.Float64bits
}

func newLane(name string, workers, queue int) *lane {
	if workers < 1 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &lane{name: name, slots: make(chan struct{}, workers), maxQueue: int64(queue)}
}

// admit claims a worker slot, waiting in the queue if one is not free. It
// returns a release function on success; an *OverloadError when the queue
// is full; or ctx.Err() when the caller's deadline expires while queued.
func (l *lane) admit(ctx context.Context) (release func(), err error) {
	select {
	case l.slots <- struct{}{}:
		return l.release, nil
	default:
	}
	if pos := l.waiting.Add(1); pos > l.maxQueue {
		l.waiting.Add(-1)
		return nil, &OverloadError{
			Lane:        l.name,
			Reason:      "queue_full",
			RetryAfterS: l.retryAfter(),
			Detail: fmt.Sprintf("%d executing, %d queued; retry later",
				len(l.slots), l.maxQueue),
		}
	}
	defer l.waiting.Add(-1)
	select {
	case l.slots <- struct{}{}:
		return l.release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (l *lane) release() { <-l.slots }

// queued returns the current queue depth (approximate, for metrics/tests).
func (l *lane) queued() int64 { return l.waiting.Load() }

// observeService feeds one service time into the Retry-After estimator.
func (l *lane) observeService(seconds float64) {
	const alpha = 0.2
	for {
		old := l.avgServiceS.Load()
		cur := math.Float64frombits(old)
		next := cur + alpha*(seconds-cur)
		if cur == 0 {
			next = seconds
		}
		if l.avgServiceS.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// retryAfter estimates how long until a queue position frees up: the queue
// ahead of the caller times the average service time, at least 1 second.
func (l *lane) retryAfter() int {
	avg := math.Float64frombits(l.avgServiceS.Load())
	if avg <= 0 {
		avg = 1
	}
	s := int(avg*float64(l.maxQueue+1) + 0.5)
	if s < 1 {
		s = 1
	}
	if s > 300 {
		s = 300
	}
	return s
}
