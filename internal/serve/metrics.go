package serve

import (
	"sort"
	"sync"
	"time"
)

// latencyWindow is how many recent request latencies each lane keeps for
// percentile estimation. A ring, not a reservoir: under sustained load the
// percentiles describe the recent past, which is what an operator watching
// /metricsz wants.
const latencyWindow = 8192

// laneCounters accumulates one lane's outcome counts and latency samples.
type laneCounters struct {
	served    int64 // 2xx responses
	shed      int64 // 429: admission control refused the work
	rejected  int64 // 4xx other than shed: the request itself was bad
	failed    int64 // 5xx
	timedOut  int64 // 504: the per-request deadline expired mid-work
	cancelled int64 // client went away before a response was written

	lat  []time.Duration // ring buffer of recent latencies
	next int
	n    int
}

func (lc *laneCounters) observe(d time.Duration) {
	if lc.lat == nil {
		lc.lat = make([]time.Duration, latencyWindow)
	}
	lc.lat[lc.next] = d
	lc.next = (lc.next + 1) % latencyWindow
	if lc.n < latencyWindow {
		lc.n++
	}
}

// Metrics aggregates per-lane outcomes, cache effectiveness and panic
// counts for the whole server. All methods are safe for concurrent use.
type Metrics struct {
	mu      sync.Mutex
	started time.Time
	lanes   map[string]*laneCounters

	cacheHits   int64
	cacheMisses int64
	coalesced   int64
	panics      int64
}

func newMetrics(now time.Time) *Metrics {
	return &Metrics{started: now, lanes: make(map[string]*laneCounters)}
}

func (m *Metrics) lane(name string) *laneCounters {
	lc := m.lanes[name]
	if lc == nil {
		lc = &laneCounters{}
		m.lanes[name] = lc
	}
	return lc
}

// record files one finished request under its lane with the final status
// code. cancelled marks client-abandoned requests separately: their
// latency says nothing about the server.
func (m *Metrics) record(lane string, status int, d time.Duration, cancelled bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	lc := m.lane(lane)
	switch {
	case cancelled:
		lc.cancelled++
		return
	case status >= 200 && status < 300:
		lc.served++
	case status == 429:
		lc.shed++
	case status == 504:
		lc.timedOut++
	case status >= 400 && status < 500:
		lc.rejected++
	default:
		lc.failed++
	}
	lc.observe(d)
}

func (m *Metrics) recordCache(state cacheState) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch state {
	case cacheHit:
		m.cacheHits++
	case cacheMiss:
		m.cacheMisses++
	case cacheCoalesced:
		m.coalesced++
	}
}

func (m *Metrics) recordPanic() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.panics++
}

// LaneSnapshot is one lane's outcome counts and latency percentiles.
type LaneSnapshot struct {
	Served    int64 `json:"served"`
	Shed      int64 `json:"shed"`
	Rejected  int64 `json:"rejected"`
	Failed    int64 `json:"failed"`
	TimedOut  int64 `json:"timed_out"`
	Cancelled int64 `json:"cancelled"`

	// Latency percentiles over the most recent latencyWindow requests, in
	// milliseconds. Zero when the lane has served nothing.
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// Snapshot is the full server state reported by /metricsz and flushed on
// drain.
type Snapshot struct {
	UptimeS     float64                 `json:"uptime_s"`
	Lanes       map[string]LaneSnapshot `json:"lanes"`
	CacheHits   int64                   `json:"cache_hits"`
	CacheMisses int64                   `json:"cache_misses"`
	Coalesced   int64                   `json:"coalesced"`
	Panics      int64                   `json:"panics"`
}

// Snapshot returns a consistent copy of every counter with percentiles
// computed.
func (m *Metrics) Snapshot(now time.Time) Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		UptimeS:     now.Sub(m.started).Seconds(),
		Lanes:       make(map[string]LaneSnapshot, len(m.lanes)),
		CacheHits:   m.cacheHits,
		CacheMisses: m.cacheMisses,
		Coalesced:   m.coalesced,
		Panics:      m.panics,
	}
	for name, lc := range m.lanes {
		ls := LaneSnapshot{
			Served: lc.served, Shed: lc.shed, Rejected: lc.rejected,
			Failed: lc.failed, TimedOut: lc.timedOut, Cancelled: lc.cancelled,
		}
		if lc.n > 0 {
			sorted := make([]time.Duration, lc.n)
			copy(sorted, lc.lat[:lc.n])
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			ls.P50Ms = percentileMs(sorted, 0.50)
			ls.P95Ms = percentileMs(sorted, 0.95)
			ls.P99Ms = percentileMs(sorted, 0.99)
			ls.MaxMs = float64(sorted[len(sorted)-1]) / float64(time.Millisecond)
		}
		s.Lanes[name] = ls
	}
	return s
}

// percentileMs returns the q-th percentile of an ascending slice using the
// nearest-rank method, in milliseconds.
func percentileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}
