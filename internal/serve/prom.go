package serve

import (
	"fmt"
	"io"
	"sort"
)

// WriteProm renders the snapshot in the Prometheus text exposition format
// (version 0.0.4): one perfscale_requests_total series per (lane, outcome),
// latency quantile gauges per lane, and the cache/panic/uptime counters.
// Lanes and outcomes are emitted in sorted order so the output is stable
// for tests and diffing.
func (s Snapshot) WriteProm(w io.Writer) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("# HELP perfscale_uptime_seconds Time since the server started.\n# TYPE perfscale_uptime_seconds gauge\nperfscale_uptime_seconds %g\n", s.UptimeS); err != nil {
		return err
	}

	lanes := make([]string, 0, len(s.Lanes))
	for name := range s.Lanes {
		lanes = append(lanes, name)
	}
	sort.Strings(lanes)

	if err := p("# HELP perfscale_requests_total Finished requests by lane and outcome.\n# TYPE perfscale_requests_total counter\n"); err != nil {
		return err
	}
	for _, name := range lanes {
		ls := s.Lanes[name]
		for _, oc := range []struct {
			outcome string
			n       int64
		}{
			{"served", ls.Served},
			{"shed", ls.Shed},
			{"rejected", ls.Rejected},
			{"failed", ls.Failed},
			{"timed_out", ls.TimedOut},
			{"cancelled", ls.Cancelled},
		} {
			if err := p("perfscale_requests_total{lane=%q,outcome=%q} %d\n", name, oc.outcome, oc.n); err != nil {
				return err
			}
		}
	}

	if err := p("# HELP perfscale_request_latency_ms Recent-window request latency quantiles by lane.\n# TYPE perfscale_request_latency_ms gauge\n"); err != nil {
		return err
	}
	for _, name := range lanes {
		ls := s.Lanes[name]
		for _, qn := range []struct {
			q string
			v float64
		}{
			{"0.5", ls.P50Ms},
			{"0.95", ls.P95Ms},
			{"0.99", ls.P99Ms},
			{"1", ls.MaxMs},
		} {
			if err := p("perfscale_request_latency_ms{lane=%q,quantile=%q} %g\n", name, qn.q, qn.v); err != nil {
				return err
			}
		}
	}

	for _, c := range []struct {
		name, help string
		v          int64
	}{
		{"perfscale_cache_hits_total", "Responses served from the result cache.", s.CacheHits},
		{"perfscale_cache_misses_total", "Responses computed because the cache missed.", s.CacheMisses},
		{"perfscale_cache_coalesced_total", "Requests that joined an in-flight identical computation.", s.Coalesced},
		{"perfscale_panics_total", "Handler panics recovered by the server.", s.Panics},
	} {
		if err := p("# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.v); err != nil {
			return err
		}
	}
	return nil
}
