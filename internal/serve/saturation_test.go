package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestSaturationCheapLaneIsolated is the saturation/chaos test of the
// acceptance criteria: with the heavy lane wedged at capacity and a burst
// of heavy traffic being shed, the cheap lane's client-observed p99 must
// stay inside its pinned band and every shed request must carry the typed
// 429 + Retry-After.
func TestSaturationCheapLaneIsolated(t *testing.T) {
	s, ts := newTestServer(t, Options{
		HeavyWorkers: 1,
		HeavyQueue:   -1, // no queue: everything beyond the one worker sheds
		CheapWorkers: 8,
		CheapQueue:   1024,
	})
	held := make(chan struct{})
	releaseHold := make(chan struct{})
	var once sync.Once
	s.testHeavyHold = func(ctx context.Context) {
		once.Do(func() { close(held) })
		select {
		case <-releaseHold:
		case <-ctx.Done():
		}
	}

	// Wedge the single heavy worker.
	wedgedDone := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/simulate?n=32&q=2")
		if err != nil {
			wedgedDone <- -1
			return
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		wedgedDone <- resp.StatusCode
	}()
	<-held

	// Past-capacity heavy burst: every request must shed as a typed 429
	// with Retry-After, never queue behind the wedged worker. Distinct
	// tuples so the cache cannot answer them.
	const heavyBurst = 20
	for i := 0; i < heavyBurst; i++ {
		url := fmt.Sprintf("%s/simulate?n=%d&q=2&seed=%d", ts.URL, 32, i+100)
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("heavy burst %d: %v", i, err)
		}
		var body map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode != 429 {
			t.Fatalf("heavy burst %d = %d %v, want 429", i, resp.StatusCode, body)
		}
		if body["error"] != "overloaded" || body["lane"] != "heavy" {
			t.Errorf("heavy burst %d body = %v, want typed overloaded/heavy", i, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("heavy burst %d missing Retry-After header", i)
		}
	}

	// Meanwhile the cheap lane must stay fast. Distinct queries (cache
	// misses) from concurrent clients, latencies measured client-side.
	const (
		cheapClients  = 8
		cheapPerWorka = 40
	)
	latCh := make(chan time.Duration, cheapClients*cheapPerWorka)
	var wg sync.WaitGroup
	for w := 0; w < cheapClients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < cheapPerWorka; i++ {
				n := 1024 * (1 + (w*cheapPerWorka+i)%64)
				url := fmt.Sprintf("%s/price?alg=matmul&n=%d&p=64", ts.URL, n)
				start := time.Now()
				resp, err := http.Get(url)
				if err != nil {
					t.Errorf("cheap query: %v", err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("cheap query under saturation = %d, want 200", resp.StatusCode)
					return
				}
				latCh <- time.Since(start)
			}
		}(w)
	}
	wg.Wait()
	close(latCh)
	var lats []time.Duration
	for d := range latCh {
		lats = append(lats, d)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p50 := lats[len(lats)/2]
	p99 := lats[int(float64(len(lats))*0.99)-1]
	t.Logf("cheap lane under heavy saturation: n=%d p50=%v p99=%v max=%v", len(lats), p50, p99, lats[len(lats)-1])
	// The pinned band: closed-form pricing is microseconds of arithmetic;
	// even with CI noise a p99 anywhere near the second mark would mean
	// the heavy lane leaked into the cheap one.
	const p99Band = 500 * time.Millisecond
	if p99 > p99Band {
		t.Errorf("cheap p99 = %v exceeds the pinned band %v while heavy lane saturated", p99, p99Band)
	}

	// Release the wedge: the in-flight heavy request must now complete.
	close(releaseHold)
	if code := <-wedgedDone; code != 200 {
		t.Errorf("wedged heavy request after release = %d, want 200", code)
	}

	snap := s.Metrics().Snapshot(time.Now())
	if snap.Lanes["heavy"].Shed != heavyBurst {
		t.Errorf("heavy shed = %d, want %d", snap.Lanes["heavy"].Shed, heavyBurst)
	}
	if got := snap.Lanes["cheap"].Served; got != cheapClients*cheapPerWorka {
		t.Errorf("cheap served = %d, want %d", got, cheapClients*cheapPerWorka)
	}
	if snap.Lanes["cheap"].Shed != 0 {
		t.Errorf("cheap shed = %d, want 0 (heavy saturation must not shed cheap work)", snap.Lanes["cheap"].Shed)
	}
}

// TestCancelledSimulateStopsSimulation is the cancellation criterion: a
// client that abandons a streaming /simulate must stop the underlying
// simulation's rank goroutines, verified by the process goroutine count
// returning to its baseline.
func TestCancelledSimulateStopsSimulation(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	baseline := runtime.NumGoroutine()

	// A real, long run: p = 64 rank goroutines multiplying 128×128 blocks.
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/simulate?n=1024&q=8&c=1&stream=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for proof the simulation is live: the first streamed event.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("no event line before cancel: %v", err)
	}
	if runtime.NumGoroutine() <= baseline {
		t.Fatalf("simulation did not raise the goroutine count above baseline %d", baseline)
	}

	// Hang up mid-run.
	cancel()
	resp.Body.Close()
	client.CloseIdleConnections()

	// The rank goroutines must unwind promptly — this is what fails if
	// Cost.Context is not threaded into the rank runtime.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC() // nudge finished HTTP conns along
		n := runtime.NumGoroutine()
		if n <= baseline+4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not drain after client hang-up: %d now vs baseline %d", n, baseline)
		}
		time.Sleep(20 * time.Millisecond)
	}
	waitFor(t, func() bool { return s.InFlight() == 0 })

	// The abandoned request is accounted as cancelled, not served.
	snap := s.Metrics().Snapshot(time.Now())
	if snap.Lanes["heavy"].Cancelled != 1 {
		t.Errorf("heavy cancelled = %d, want 1", snap.Lanes["heavy"].Cancelled)
	}
}

// TestMixedChaosTraffic drives a randomized mixture of valid, invalid,
// oversized and concurrent duplicate traffic through every endpoint at
// once: nothing may panic, hang or corrupt the accounting.
func TestMixedChaosTraffic(t *testing.T) {
	s, ts := newTestServer(t, Options{HeavyWorkers: 2, HeavyQueue: 2, MaxSimRanks: 64})
	urls := []string{
		"/price?alg=matmul&n=4096&p=64",
		"/price?alg=nbody&n=1e6&p=100",
		"/price?alg=bogus",
		"/price?alg=matmul&n=-5&p=64",
		"/optimize?alg=nbody&n=1e6&objective=min_energy",
		"/optimize?alg=matmul&n=4096&objective=min_energy_given_time&budget=1e-12",
		"/simulate?n=32&q=2",
		"/simulate?n=32&q=2&stream=1",
		"/simulate?n=128&q=16", // oversized: p = 256 > 64
		"/simulate?n=33&q=2",   // invalid shape
		"/healthz",
		"/readyz",
		"/metricsz",
	}
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				u := urls[(w*25+i)%len(urls)]
				resp, err := http.Get(ts.URL + u)
				if err != nil {
					t.Errorf("chaos GET %s: %v", u, err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode >= 500 {
					t.Errorf("chaos GET %s = %d", u, resp.StatusCode)
				}
			}
		}(w)
	}
	wg.Wait()
	if snap := s.Metrics().Snapshot(time.Now()); snap.Panics != 0 {
		t.Errorf("panics under chaos = %d", snap.Panics)
	}
	if s.InFlight() != 0 {
		t.Errorf("in-flight after chaos = %d, want 0", s.InFlight())
	}
}
