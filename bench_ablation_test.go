// Ablation benchmarks for the design choices called out in DESIGN.md §5:
// virtual-clock charging semantics, all-to-all strategy, broadcast
// algorithm, Strassen cutoff, CAPS schedule, and network topology.
package perfscale_test

import (
	"testing"

	"perfscale/internal/fft"
	"perfscale/internal/lu"
	"perfscale/internal/matmul"
	"perfscale/internal/matrix"
	"perfscale/internal/sim"
	"perfscale/internal/strassen"
)

// BenchmarkAblationClockCharging compares the default accounting (sender
// pays, receiver waits) against charging both sides, on the E2 2.5D matmul
// scaling run. The constant differs; the speedup shape must not.
func BenchmarkAblationClockCharging(b *testing.B) {
	base := sim.Cost{GammaT: 1e-9, BetaT: 4e-9, AlphaT: 1e-8}
	charged := base
	charged.ChargeReceiver = true
	var sBase, sCharged float64
	for i := 0; i < b.N; i++ {
		a := matrix.Random(96, 96, 1)
		bb := matrix.Random(96, 96, 2)
		speedup := func(c sim.Cost) float64 {
			r1, err := matmul.TwoPointFiveD(c, 4, 1, a, bb)
			if err != nil {
				b.Fatal(err)
			}
			r4, err := matmul.TwoPointFiveD(c, 4, 4, a, bb)
			if err != nil {
				b.Fatal(err)
			}
			return r1.Sim.Time() / r4.Sim.Time()
		}
		sBase = speedup(base)
		sCharged = speedup(charged)
	}
	b.ReportMetric(sBase, "speedup-default")
	b.ReportMetric(sCharged, "speedup-charged")
}

// BenchmarkAblationAllToAllCrossover sweeps the latency/bandwidth ratio and
// reports the αt/βt ratio (in words) at which the tree all-to-all overtakes
// the naive one for the FFT exchange — the model predicts the crossover
// near W_extra/S_saved = (n/p)(log p − 2)/2 / (p − log p) words per saved
// message.
func BenchmarkAblationAllToAllCrossover(b *testing.B) {
	const n, p = 1024, 16
	x := fft.RandomSignal(n, 3)
	var crossover float64
	for i := 0; i < b.N; i++ {
		crossover = -1
		for ratio := 1.0; ratio <= 1<<20; ratio *= 2 {
			cost := sim.Cost{BetaT: 1e-9, AlphaT: 1e-9 * ratio}
			naive, err := fft.Distributed(cost, p, x, false)
			if err != nil {
				b.Fatal(err)
			}
			tree, err := fft.Distributed(cost, p, x, true)
			if err != nil {
				b.Fatal(err)
			}
			if tree.Sim.Time() < naive.Sim.Time() {
				crossover = ratio
				break
			}
		}
	}
	b.ReportMetric(crossover, "alpha-beta-crossover-words")
}

// BenchmarkAblationBroadcast compares the binomial tree against the
// scatter+allgather broadcast at a large payload: root words sent and
// completion time under a bandwidth-dominated network.
func BenchmarkAblationBroadcast(b *testing.B) {
	const p = 8
	const k = 1 << 14
	cost := sim.Cost{BetaT: 1e-9, AlphaT: 1e-8}
	data := make([]float64, k)
	var treeWords, largeWords, treeTime, largeTime float64
	for i := 0; i < b.N; i++ {
		resTree, err := sim.Run(p, cost, func(r *sim.Rank) error {
			var in []float64
			if r.ID() == 0 {
				in = data
			}
			r.World().Bcast(0, in)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		resLarge, err := sim.Run(p, cost, func(r *sim.Rank) error {
			var in []float64
			if r.ID() == 0 {
				in = data
			}
			r.World().BcastLarge(0, in)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		treeWords = resTree.PerRank[0].WordsSent
		largeWords = resLarge.PerRank[0].WordsSent
		treeTime = resTree.Time()
		largeTime = resLarge.Time()
	}
	b.ReportMetric(treeWords/largeWords, "root-words-ratio")
	b.ReportMetric(treeTime/largeTime, "time-ratio")
}

// BenchmarkAblationStrassenCutoff sweeps the serial Strassen cutoff and
// reports the flop count relative to classical for each: small cutoffs buy
// flops at the price of recursion overhead (which the flop model does not
// see, but wall time does).
func BenchmarkAblationStrassenCutoff(b *testing.B) {
	const n = 512
	classical := 2.0 * n * n * n
	var ratio16, ratio64, ratio256 float64
	for i := 0; i < b.N; i++ {
		a := matrix.Random(n, n, 1)
		bb := matrix.Random(n, n, 2)
		_ = strassen.Multiply(a, bb, 64)
		ratio16 = strassen.Flops(n, 16) / classical
		ratio64 = strassen.Flops(n, 64) / classical
		ratio256 = strassen.Flops(n, 256) / classical
	}
	b.ReportMetric(ratio16, "flops-vs-classical-cut16")
	b.ReportMetric(ratio64, "flops-vs-classical-cut64")
	b.ReportMetric(ratio256, "flops-vs-classical-cut256")
}

// BenchmarkAblationCAPSSchedule compares BFS-only against DFS-then-BFS on
// the same rank count: peak memory versus communication volume.
func BenchmarkAblationCAPSSchedule(b *testing.B) {
	const n = 112
	var memRatio, wordRatio float64
	for i := 0; i < b.N; i++ {
		a := matrix.Random(n, n, 3)
		bb := matrix.Random(n, n, 4)
		bfs, err := strassen.CAPSSchedule(sim.Cost{}, "B", a, bb, 8)
		if err != nil {
			b.Fatal(err)
		}
		dfs, err := strassen.CAPSSchedule(sim.Cost{}, "DB", a, bb, 8)
		if err != nil {
			b.Fatal(err)
		}
		memRatio = bfs.Sim.MaxStats().PeakMemWords / dfs.Sim.MaxStats().PeakMemWords
		wordRatio = dfs.Sim.MaxStats().WordsSent / bfs.Sim.MaxStats().WordsSent
	}
	b.ReportMetric(memRatio, "bfs-dfs-memory-ratio")
	b.ReportMetric(wordRatio, "dfs-bfs-words-ratio")
}

// BenchmarkAblationTorusTopology runs 2.5D matmul under uniform links and
// under a 4x4x4 torus whose per-hop latency equals the uniform latency:
// the paper's remark that a 3D torus is a good match for the algorithm —
// most traffic is nearest-neighbor, so the torus penalty stays small.
func BenchmarkAblationTorusTopology(b *testing.B) {
	const n, q, c = 96, 4, 4 // p = 64 = 4x4x4
	uniform := sim.Cost{GammaT: 1e-9, BetaT: 4e-9, AlphaT: 1e-7}
	torus := uniform
	torus.Links = sim.Torus3DLinks{X: 4, Y: 4, Z: 4, AlphaPerHop: 1e-7, BetaPerWord: 4e-9}
	var slowdown float64
	for i := 0; i < b.N; i++ {
		a := matrix.Random(n, n, 5)
		bb := matrix.Random(n, n, 6)
		rU, err := matmul.TwoPointFiveD(uniform, q, c, a, bb)
		if err != nil {
			b.Fatal(err)
		}
		rT, err := matmul.TwoPointFiveD(torus, q, c, a, bb)
		if err != nil {
			b.Fatal(err)
		}
		slowdown = rT.Sim.Time() / rU.Sim.Time()
	}
	b.ReportMetric(slowdown, "torus-vs-uniform-time")
}

// BenchmarkAblationTorusPlacement quantifies the paper's "3D torus is a
// perfect match" remark with Cannon's algorithm, whose communication is
// entirely nearest-neighbor shifts: embedding the process grid on torus
// lines versus scrambling it. Latency-only clock — the torus model keeps
// bandwidth uniform, so hop counts are the whole story.
func BenchmarkAblationTorusPlacement(b *testing.B) {
	const n, q = 64, 8 // p = 64 on an 8x8 torus
	tor := sim.Torus3DLinks{X: 8, Y: 8, Z: 1, AlphaPerHop: 1e-7}
	grid3, err := sim.NewGrid3D(q, 1, q*q)
	if err != nil {
		b.Fatal(err)
	}
	good, err := sim.GridToTorusPlacement(grid3, tor)
	if err != nil {
		b.Fatal(err)
	}
	bad := make([]int, len(good))
	for i := range bad {
		bad[i] = (i*37 + 11) % len(bad)
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		a := matrix.Random(n, n, 7)
		bb := matrix.Random(n, n, 8)
		run := func(place []int) float64 {
			cost := sim.Cost{Links: sim.PlacedLinks{Base: tor, Place: place}}
			res, err := matmul.Cannon(cost, q, a, bb)
			if err != nil {
				b.Fatal(err)
			}
			return res.Sim.Time()
		}
		ratio = run(bad) / run(good)
	}
	b.ReportMetric(ratio, "scrambled-vs-embedded-time")
}

// BenchmarkAblation25DInnerAlgorithm compares the Cannon-based and
// SUMMA-based 2.5D variants under a latency-heavy and a bandwidth-heavy
// network: shifts beat broadcast trees on latency, and the two converge
// when bandwidth dominates.
func BenchmarkAblation25DInnerAlgorithm(b *testing.B) {
	const n, q, c = 96, 4, 2
	var latRatio, bwRatio float64
	for i := 0; i < b.N; i++ {
		a := matrix.Random(n, n, 9)
		bb := matrix.Random(n, n, 10)
		run := func(cost sim.Cost, summa bool) float64 {
			var res *matmul.RunResult
			var err error
			if summa {
				res, err = matmul.TwoPointFiveDSUMMA(cost, q, c, a, bb)
			} else {
				res, err = matmul.TwoPointFiveD(cost, q, c, a, bb)
			}
			if err != nil {
				b.Fatal(err)
			}
			return res.Sim.Time()
		}
		lat := sim.Cost{AlphaT: 1e-6}
		bw := sim.Cost{BetaT: 4e-9}
		latRatio = run(lat, true) / run(lat, false)
		bwRatio = run(bw, true) / run(bw, false)
	}
	b.ReportMetric(latRatio, "summa-over-cannon-latency")
	b.ReportMetric(bwRatio, "summa-over-cannon-bandwidth")
}

// BenchmarkAblationLULayout compares the plain block layout against the
// block-cyclic layout for 2D LU: flop imbalance of the busiest rank.
func BenchmarkAblationLULayout(b *testing.B) {
	const n, q = 64, 2
	var blockImb, cyclicImb float64
	for i := 0; i < b.N; i++ {
		a := matrix.RandomDiagDominant(n, 11)
		blk, err := lu.TwoD(sim.Cost{}, q, a)
		if err != nil {
			b.Fatal(err)
		}
		cyc, err := lu.TwoDCyclic(sim.Cost{}, q, 8, a)
		if err != nil {
			b.Fatal(err)
		}
		imb := func(r *lu.Result) float64 {
			return r.Sim.MaxStats().Flops * float64(q*q) / r.Sim.TotalStats().Flops
		}
		blockImb = imb(blk)
		cyclicImb = imb(cyc)
	}
	b.ReportMetric(blockImb, "block-layout-imbalance")
	b.ReportMetric(cyclicImb, "cyclic-layout-imbalance")
}
