package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"perfscale/internal/conformance"
)

// The test binary re-executes itself with CONFORMANCE_RUN_MAIN=1 so main()
// runs exactly as shipped, flag parsing and exit codes included.
func TestMain(m *testing.M) {
	if os.Getenv("CONFORMANCE_RUN_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

func runConformance(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "CONFORMANCE_RUN_MAIN=1")
	out, err := cmd.CombinedOutput()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("conformance %v did not run: %v\n%s", args, err, out)
		}
		code = ee.ExitCode()
	}
	return string(out), code
}

// quickFlags restricts the sweep to one fast algorithm so the subprocess
// tests exercise the full report pipeline in well under a second.
var quickFlags = []string{"-quick", "-alg", "fft"}

func TestQuickSweepWritesReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	out, code := runConformance(t, append(quickFlags, "-out", path)...)
	if code != 0 {
		t.Fatalf("quick sweep exit %d:\n%s", code, out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("-out did not write the report: %v", err)
	}
	var rep conformance.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Checks == 0 || len(rep.Violations) != 0 {
		t.Fatalf("unexpected report: %d checks, %d violations", rep.Checks, len(rep.Violations))
	}
}

func TestBadFlagsExitTwo(t *testing.T) {
	cases := [][]string{
		{},                  // neither -quick nor -full
		{"-quick", "-full"}, // both
		{"-quick", "-machine", "no-such-preset"},
	}
	for _, args := range cases {
		if out, code := runConformance(t, args...); code != 2 {
			t.Errorf("conformance %v: exit %d, want 2\n%s", args, code, out)
		}
	}
}

// TestWriteFailureExitStatus: a report that cannot be written must exit 1,
// not succeed silently. /dev/full fails every write with ENOSPC.
func TestWriteFailureExitStatus(t *testing.T) {
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full not available on this platform")
	}
	out, code := runConformance(t, append(quickFlags, "-out", "/dev/full")...)
	if code != 1 {
		t.Fatalf("write to /dev/full: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "report") {
		t.Errorf("missing write diagnostic:\n%s", out)
	}
}

// TestUnwritableOutputExitStatus: failing to open the report file at all
// is also exit 1.
func TestUnwritableOutputExitStatus(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no", "such", "dir", "report.json")
	if out, code := runConformance(t, append(quickFlags, "-out", path)...); code != 1 {
		t.Fatalf("unwritable -out: exit %d, want 1\n%s", code, out)
	}
}
