// Command conformance runs the model-conformance sweep: every distributed
// algorithm in the repository against the paper's closed forms, checked by
// the differential, metamorphic and replay property families in
// internal/conformance.
//
// Usage:
//
//	conformance -quick               # CI gate: small grids, a few seconds
//	conformance -full                # widened grids
//	conformance -alg fft,matmul-2.5d # restrict to named algorithms
//	conformance -machine jaketown    # price on a named machine or JSON file
//	conformance -out report.json     # machine-readable violation report
//	conformance -v                   # dump every band ratio to stderr
//
// The exit status is 0 when the sweep passes, 1 on violations or when the
// -out report cannot be written, 2 on a harness failure (an algorithm
// refusing to run, bad flags), 130 when interrupted by SIGINT/SIGTERM — in
// which case the -out report is still written, marked "interrupted",
// covering the points reached.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"perfscale/internal/conformance"
	"perfscale/internal/machine"
	"perfscale/internal/report"
)

func main() {
	quick := flag.Bool("quick", false, "quick sweep (the CI gate)")
	full := flag.Bool("full", false, "full sweep (widened grids)")
	algs := flag.String("alg", "", "comma-separated algorithms (default all; see -list)")
	list := flag.Bool("list", false, "list the algorithms the sweep covers and exit")
	machineName := flag.String("machine", "simdefault", "machine preset name or params JSON file")
	out := flag.String("out", "", "write the JSON report to this file (default none)")
	verbose := flag.Bool("v", false, "dump every band-check ratio to stderr")
	flag.Parse()

	if *list {
		for _, name := range conformance.AlgorithmNames() {
			fmt.Println(name)
		}
		return
	}
	if *quick == *full {
		fmt.Fprintln(os.Stderr, "conformance: pick exactly one of -quick or -full")
		os.Exit(2)
	}

	m, err := machine.Resolve(*machineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "conformance:", err)
		os.Exit(2)
	}
	cfg := conformance.Config{Machine: m, Level: conformance.Quick}
	if *full {
		cfg.Level = conformance.Full
	}
	if *algs != "" {
		for _, a := range strings.Split(*algs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				cfg.Algorithms = append(cfg.Algorithms, a)
			}
		}
	}
	if *verbose {
		cfg.Verbose = os.Stderr
	}

	// A first SIGINT/SIGTERM cancels the sweep (a partial report is still
	// written); a second one falls back to the default handler and kills
	// the process outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg.Context = ctx

	start := time.Now()
	rep, err := conformance.Sweep(cfg)
	rep.WallSeconds = time.Since(start).Seconds()
	interrupted := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	if err != nil && !interrupted {
		fmt.Fprintln(os.Stderr, "conformance:", err)
		os.Exit(2)
	}

	if *out != "" {
		data, merr := json.MarshalIndent(rep, "", "  ")
		if merr != nil {
			fmt.Fprintln(os.Stderr, "conformance:", merr)
			os.Exit(2)
		}
		w, closeOut, oerr := report.OpenOutput(*out)
		if oerr != nil {
			fmt.Fprintln(os.Stderr, "conformance:", oerr)
			os.Exit(1)
		}
		w.Printf("%s\n", data)
		if werr := w.Err(); werr != nil {
			fmt.Fprintln(os.Stderr, "conformance: writing report:", werr)
			os.Exit(1)
		}
		if cerr := closeOut(); cerr != nil {
			fmt.Fprintln(os.Stderr, "conformance: closing report:", cerr)
			os.Exit(1)
		}
	}

	status := ""
	if interrupted {
		status = " [interrupted — partial]"
	}
	fmt.Printf("conformance %s on %s: %d points, %d checks, %d violations (%.2fs)%s\n",
		rep.Level, rep.Machine, rep.Points, rep.Checks, len(rep.Violations), rep.WallSeconds, status)
	for _, v := range rep.Violations {
		fmt.Println("  " + v.String())
	}
	if interrupted {
		fmt.Fprintln(os.Stderr, "conformance:", err)
		os.Exit(130)
	}
	if !rep.Ok() {
		os.Exit(1)
	}
}
