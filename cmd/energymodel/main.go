// Command energymodel evaluates the paper's runtime and energy models for a
// chosen algorithm, machine and configuration, and answers the five
// optimization questions of the introduction:
//
//  1. minimum energy for a computation,
//  2. minimum energy within a runtime budget,
//  3. minimum runtime within an energy budget,
//  4. configurations under power budgets,
//  5. machine parameters for a target GFLOPS/W.
//
// Usage:
//
//	energymodel -alg matmul -machine jaketown -n 35000 -p 2
//	energymodel -alg nbody -machine illustrative -n 1e4 -p 20 -mem 2000 -questions
//	energymodel -alg strassen -n 8192 -p 49 -tmax 1e-2 -emax 5 -o answers.txt
//
// Output goes to stdout or the -o file; write failures exit non-zero.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"perfscale/internal/bounds"
	"perfscale/internal/core"
	"perfscale/internal/machine"
	"perfscale/internal/opt"
	"perfscale/internal/report"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		alg       = flag.String("alg", "matmul", "algorithm: matmul, strassen, lu, nbody, fft")
		mach      = flag.String("machine", "jaketown", "machine preset name or .json parameter file")
		n         = flag.Float64("n", 8192, "problem size (matrix dimension, bodies, or FFT length)")
		p         = flag.Float64("p", 16, "processor count")
		mem       = flag.Float64("mem", 0, "memory per processor in words (0 = n²/p for matmul, n/p for n-body)")
		f         = flag.Float64("f", 19, "n-body flops per interaction")
		tree      = flag.Bool("tree", true, "FFT: use the tree all-to-all")
		questions = flag.Bool("questions", false, "answer the Section V optimization questions")
		tmax      = flag.Float64("tmax", 0, "runtime budget in seconds for question 2 (0 = skip)")
		emax      = flag.Float64("emax", 0, "energy budget in joules for question 3 (0 = skip)")
		target    = flag.Float64("target", 75, "GFLOPS/W target for question 5")
		outPath   = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	m, err := machine.Resolve(*mach)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	w, closeOut, err := report.OpenOutput(*outPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "energymodel:", err)
		return 1
	}
	w.Println(m.String())
	w.Println()

	var r core.Result
	switch *alg {
	case "matmul":
		if *mem == 0 {
			*mem = *n * *n / *p
		}
		r = core.MatMulClassical(m, *n, *p, *mem)
	case "strassen":
		if *mem == 0 {
			*mem = *n * *n / *p
		}
		r = core.FastMatMul(m, *n, *p, *mem, bounds.OmegaStrassen)
	case "lu":
		if *mem == 0 {
			*mem = *n * *n / *p
		}
		r = core.LU(m, *n, *p, *mem)
	case "nbody":
		if *mem == 0 {
			*mem = *n / *p
		}
		r = core.NBody(m, *n, *p, *mem, *f)
	case "fft":
		r = core.FFT(m, *n, *p, *tree)
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *alg)
		closeOut()
		return 2
	}

	printResult(w, *alg, *n, r)

	if *questions || *tmax > 0 || *emax > 0 {
		switch *alg {
		case "nbody":
			answerNBody(w, m, *n, *f, *tmax, *emax, *target)
		case "matmul", "strassen":
			omega := 3.0
			if *alg == "strassen" {
				omega = bounds.OmegaStrassen
			}
			answerMatMul(w, m, *n, omega, *tmax, *emax)
		default:
			w.Println("optimization questions are implemented for matmul, strassen and nbody")
		}
	}

	code := 0
	if err := w.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "energymodel: writing report:", err)
		code = 1
	}
	if err := closeOut(); err != nil {
		fmt.Fprintln(os.Stderr, "energymodel: closing output:", err)
		code = 1
	}
	return code
}

func printResult(w *report.ErrWriter, alg string, n float64, r core.Result) {
	t := report.NewTable(fmt.Sprintf("%s: n=%s p=%s M=%s words", alg,
		report.FormatFloat(n), report.FormatFloat(r.P), report.FormatFloat(r.Mem)),
		"quantity", "value")
	t.AddRow("F per proc (flops)", r.Costs.Flops)
	t.AddRow("W per proc (words)", r.Costs.Words)
	t.AddRow("S per proc (messages)", r.Costs.Msgs)
	t.AddRow("T compute (s)", r.Time.Compute)
	t.AddRow("T bandwidth (s)", r.Time.Bandwidth)
	t.AddRow("T latency (s)", r.Time.Latency)
	t.AddRow("T total (s)", r.TotalTime())
	t.AddRow("E compute (J)", r.Energy.Compute)
	t.AddRow("E bandwidth (J)", r.Energy.Bandwidth)
	t.AddRow("E latency (J)", r.Energy.Latency)
	t.AddRow("E memory (J)", r.Energy.Memory)
	t.AddRow("E leakage (J)", r.Energy.Leakage)
	t.AddRow("E total (J)", r.TotalEnergy())
	t.AddRow("avg power (W)", r.AvgPower())
	t.AddRow("power/proc (W)", r.PowerPerProcessor())
	t.AddRow("GFLOPS/W", r.GFLOPSPerWatt())
	w.Println(t.Render())
}

func answerNBody(w *report.ErrWriter, m machine.Params, n, f, tmax, emax, target float64) {
	pb := opt.NBody{M: m, N: n, F: f}
	t := report.NewTable("Section V answers (n-body)", "question", "answer")
	m0 := pb.OptimalMemory()
	lo, hi := pb.MinEnergyProcRange()
	t.AddRow("Q1 optimal memory M0 (words)", m0)
	t.AddRow("Q1 minimum energy E* (J)", pb.MinEnergy())
	t.AddRow("Q1 E* attainable for p in", fmt.Sprintf("[%s, %s]", report.FormatFloat(lo), report.FormatFloat(hi)))
	if tmax > 0 {
		if cfg, e, err := pb.MinEnergyGivenTime(tmax); err == nil {
			t.AddRow(fmt.Sprintf("Q2 min E s.t. T<=%s", report.FormatFloat(tmax)),
				fmt.Sprintf("E=%s at p=%s M=%s", report.FormatFloat(e), report.FormatFloat(cfg.P), report.FormatFloat(cfg.Mem)))
		} else {
			t.AddRow("Q2", fmt.Sprintf("infeasible: %v", err))
		}
	}
	if emax > 0 {
		if cfg, tt, err := pb.MinTimeGivenEnergy(emax); err == nil {
			t.AddRow(fmt.Sprintf("Q3 min T s.t. E<=%s", report.FormatFloat(emax)),
				fmt.Sprintf("T=%s at p=%s M=%s", report.FormatFloat(tt), report.FormatFloat(cfg.P), report.FormatFloat(cfg.Mem)))
		} else {
			t.AddRow("Q3", fmt.Sprintf("infeasible: %v", err))
		}
	}
	pp := pb.ProcPower(m0)
	t.AddRow("Q4 power/proc at M0 (W)", pp)
	t.AddRow("Q4 procs within 100x that total power", pb.MaxProcsGivenTotalPower(100*pp, m0))
	t.AddRow("Q5 best-case efficiency (GFLOPS/W)", pb.Efficiency())
	t.AddRow(fmt.Sprintf("Q5 energy-param scale for %g GFLOPS/W", target), pb.EnergyScaleForTarget(target))
	t.AddRow("Q5 generations of halving needed", math.Ceil(math.Log2(1/pb.EnergyScaleForTarget(target))))
	w.Println(t.Render())
}

func answerMatMul(w *report.ErrWriter, m machine.Params, n, omega, tmax, emax float64) {
	pb := opt.MatMul{M: m, N: n, Omega: omega}
	t := report.NewTable("Section V answers (matmul, numeric)", "question", "answer")
	mStar := pb.OptimalMemory()
	t.AddRow("Q1 optimal memory M* (words)", mStar)
	t.AddRow("Q1 minimum energy (J)", pb.MinEnergy())
	t.AddRow("Q1 scaling range at M*", fmt.Sprintf("[%s, %s]",
		report.FormatFloat(pb.PMin(mStar)), report.FormatFloat(pb.PMax(mStar))))
	if tmax > 0 {
		if cfg, e, err := pb.MinEnergyGivenTime(tmax); err == nil {
			t.AddRow(fmt.Sprintf("Q2 min E s.t. T<=%s", report.FormatFloat(tmax)),
				fmt.Sprintf("E=%s at p=%s M=%s", report.FormatFloat(e), report.FormatFloat(cfg.P), report.FormatFloat(cfg.Mem)))
		} else {
			t.AddRow("Q2", fmt.Sprintf("infeasible: %v", err))
		}
	}
	if emax > 0 {
		if cfg, tt, err := pb.MinTimeGivenEnergy(emax); err == nil {
			t.AddRow(fmt.Sprintf("Q3 min T s.t. E<=%s", report.FormatFloat(emax)),
				fmt.Sprintf("T=%s at p=%s M=%s", report.FormatFloat(tt), report.FormatFloat(cfg.P), report.FormatFloat(cfg.Mem)))
		} else {
			t.AddRow("Q3", fmt.Sprintf("infeasible: %v", err))
		}
	}
	t.AddRow("Q4 power/proc at M* (W)", pb.ProcPower(mStar))
	t.AddRow("Q5 best-case efficiency (GFLOPS/W)", pb.Efficiency())
	w.Println(t.Render())
}
