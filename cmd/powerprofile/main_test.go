package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// The test binary re-executes itself with POWERPROFILE_RUN_MAIN=1 so main()
// runs exactly as shipped, flag parsing and exit codes included.
func TestMain(m *testing.M) {
	if os.Getenv("POWERPROFILE_RUN_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

func runPowerprofile(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "POWERPROFILE_RUN_MAIN=1")
	out, err := cmd.CombinedOutput()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("powerprofile %v did not run: %v\n%s", args, err, out)
		}
		code = ee.ExitCode()
	}
	return string(out), code
}

func TestOutputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "profile.txt")
	out, code := runPowerprofile(t, "-alg", "matmul", "-n", "48", "-q", "2", "-c", "1", "-o", path)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"simulated T", "utilization:", "Power over time", "peak"} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("report misses %q:\n%s", want, data)
		}
	}
}

func TestBadUsageExitsTwo(t *testing.T) {
	if out, code := runPowerprofile(t, "-alg", "nope"); code != 2 {
		t.Fatalf("unknown alg: exit %d, want 2:\n%s", code, out)
	}
	if out, code := runPowerprofile(t, "-machine", "nope"); code != 2 {
		t.Fatalf("unknown machine: exit %d, want 2:\n%s", code, out)
	}
}

func TestWriteFailureExitsNonZero(t *testing.T) {
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full not available")
	}
	out, code := runPowerprofile(t, "-alg", "matmul", "-n", "48", "-q", "2", "-c", "1", "-o", "/dev/full")
	if code == 0 {
		t.Fatalf("write to /dev/full succeeded:\n%s", out)
	}
	if !strings.Contains(out, "powerprofile:") {
		t.Fatalf("no write-failure diagnostic:\n%s", out)
	}
}
