// Command powerprofile runs a distributed algorithm with tracing enabled
// and reports what the paper's average-power analysis cannot see: the
// time-resolved machine power (peak vs average), the critical path through
// the message graph, and per-rank utilization.
//
// Usage:
//
//	powerprofile -alg matmul -machine simdefault -n 96 -c 2
//	powerprofile -alg nbody -n 256 -p 16 -c 2 -o profile.txt
//
// Output goes to stdout or the -o file; write failures exit non-zero.
package main

import (
	"flag"
	"fmt"
	"os"

	"perfscale/internal/core"
	"perfscale/internal/machine"
	"perfscale/internal/matmul"
	"perfscale/internal/matrix"
	"perfscale/internal/nbody"
	"perfscale/internal/report"
	"perfscale/internal/sim"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		alg     = flag.String("alg", "matmul", "algorithm: matmul, nbody")
		mach    = flag.String("machine", "simdefault", "machine preset name or .json parameter file")
		n       = flag.Int("n", 96, "problem size")
		p       = flag.Int("p", 16, "ranks (n-body)")
		q       = flag.Int("q", 4, "grid size (matmul)")
		c       = flag.Int("c", 2, "replication factor")
		buckets = flag.Int("buckets", 48, "power profile resolution")
		outPath = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	m, err := machine.Resolve(*mach)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	w, closeOut, err := report.OpenOutput(*outPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "powerprofile:", err)
		return 1
	}
	code := profile(w, m, *alg, *n, *p, *q, *c, *buckets)
	if err := w.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "powerprofile: writing report:", err)
		code = 1
	}
	if err := closeOut(); err != nil {
		fmt.Fprintln(os.Stderr, "powerprofile: closing output:", err)
		code = 1
	}
	return code
}

func profile(w *report.ErrWriter, m machine.Params, alg string, n, p, q, c, buckets int) int {
	cost := sim.Cost{GammaT: m.GammaT, BetaT: m.BetaT, AlphaT: m.AlphaT,
		MaxMsgWords: int(m.MaxMsgWords), Trace: true}

	var res *sim.Result
	switch alg {
	case "matmul":
		a := matrix.Random(n, n, 1)
		b := matrix.Random(n, n, 2)
		run, err := matmul.TwoPointFiveD(cost, q, c, a, b)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		res = run.Sim
	case "nbody":
		bodies := nbody.RandomBodies(n, 3)
		run, err := nbody.Replicated(cost, p, c, bodies)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		res = run.Sim
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", alg)
		return 2
	}

	w.Printf("%s on %s: simulated T = %s s\n\n", alg, m.Name, report.FormatFloat(res.Time()))

	// Critical path.
	path := res.Trace.CriticalPath()
	bd := sim.PathBreakdown(path)
	t := report.NewTable("Critical path (the chain that sets the runtime)",
		"component", "seconds", "share")
	total := res.Time()
	for _, k := range []sim.SegmentKind{sim.SegCompute, sim.SegSend, sim.SegWait, sim.SegRecv} {
		if bd[k] > 0 {
			t.AddRow(k.String(), bd[k], fmt.Sprintf("%.1f%%", 100*bd[k]/total))
		}
	}
	t.AddRow("segments on path", len(path), "")
	w.Println(t.Render())

	// Utilization.
	u := res.Trace.Utilization(res.Time())
	lo, hi, avg := 1.0, 0.0, 0.0
	for _, v := range u {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		avg += v
	}
	avg /= float64(len(u))
	w.Printf("utilization: min %.0f%%  avg %.0f%%  max %.0f%% across %d ranks\n\n",
		100*lo, 100*avg, 100*hi, len(u))

	// Timeline.
	w.Println(res.Trace.RenderGantt(res.Time(), 72))

	// Power profile.
	prof, err := core.Profile(m, res, buckets)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var s report.Series
	s.Name = "machine power (W)"
	for i, pw := range prof.Power {
		s.Add(prof.BucketStart[i], pw)
	}
	w.Println(report.Chart("Power over time", 60, 12, false, false, s))
	w.Printf("peak %s W, average %s W (E/T), static floor %s W\n",
		report.FormatFloat(prof.Peak), report.FormatFloat(prof.Avg), report.FormatFloat(prof.StaticPower))
	w.Printf("peak/average = %.2f — the paper's P = E/T underestimates the cap a real machine needs by this factor\n",
		prof.Peak/prof.Avg)
	return 0
}
