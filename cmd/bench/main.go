// Command bench runs a fixed matrix of (algorithm, p, M) simulations and
// records, for each, the runtime footprint of hosting it (wall-clock,
// allocation, peak RSS, wired pair count) next to the simulated physics
// (virtual time T and priced energy E). Its headline artifact is the
// dense-vs-sparse wiring comparison: identical simulated results at every
// p where dense is feasible, and a p = 16384 run that only sparse wiring
// can host.
//
// Output is a JSON report (default BENCH_sim.json) meant to be committed,
// so scaling regressions of the simulator itself show up in review.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"time"

	"perfscale/internal/analytics"
	"perfscale/internal/campaign"
	"perfscale/internal/conformance"
	"perfscale/internal/core"
	"perfscale/internal/machine"
	"perfscale/internal/matmul"
	"perfscale/internal/matrix"
	"perfscale/internal/obs"
	"perfscale/internal/resilience"
	"perfscale/internal/sim"
)

// runRecord is one benchmark row: one algorithm at one (p, M) point under
// one wiring mode.
type runRecord struct {
	Algorithm string `json:"algorithm"`
	Q         int    `json:"q"`
	C         int    `json:"c"`
	P         int    `json:"p"`
	N         int    `json:"n"`
	Wiring    string `json:"wiring"`
	Runtime   string `json:"runtime"`

	// Host-side footprint of running the simulation.
	WallSeconds float64 `json:"wall_seconds"`
	AllocBytes  uint64  `json:"alloc_bytes"`
	PeakRSSKB   uint64  `json:"peak_rss_kb,omitempty"` // VmHWM; process-wide and monotone
	ActivePairs int     `json:"active_pairs"`

	// Simulated physics of the run.
	SimTime      float64 `json:"sim_time_s"`
	EnergyJoules float64 `json:"energy_joules"`
	MaxFlops     float64 `json:"max_flops"`
	MaxWordsSent float64 `json:"max_words_sent"`
	MaxMsgsSent  float64 `json:"max_msgs_sent"`
	MaxMemWords  float64 `json:"max_mem_words"`
}

// comparison records a dense-vs-sparse pair at one point and whether every
// per-rank counter and clock matched bit for bit.
type comparison struct {
	Algorithm    string  `json:"algorithm"`
	P            int     `json:"p"`
	BitIdentical bool    `json:"bit_identical"`
	DenseWallS   float64 `json:"dense_wall_seconds"`
	SparseWallS  float64 `json:"sparse_wall_seconds"`
	DensePairs   int     `json:"dense_active_pairs"`
	SparsePairs  int     `json:"sparse_active_pairs"`
}

// backendComparison records a goroutine-vs-event runtime pair at one point:
// the simulated Results must be bit-identical (same per-rank counters and
// clocks, same product matrix), and the wall-clock ratio is the event
// engine's payoff — at p = 16384 the event backend prices the run several
// times faster, and beyond it only the event backend is feasible at all.
type backendComparison struct {
	Algorithm     string  `json:"algorithm"`
	P             int     `json:"p"`
	BitIdentical  bool    `json:"bit_identical"`
	GoroutineWall float64 `json:"goroutine_wall_seconds"`
	EventWall     float64 `json:"event_wall_seconds"`
	Speedup       float64 `json:"speedup"`
}

// traceOverhead records the wall-clock cost of observing a run through the
// bounded ring-buffer subscriber relative to running it blind. Wall fields
// are each side's best; OverheadFrac is the median of interleaved paired
// ratios, which is robust to host-speed drift between runs.
type traceOverhead struct {
	Algorithm     string  `json:"algorithm"`
	P             int     `json:"p"`
	RingCapacity  int     `json:"ring_capacity"`
	EventsSeen    uint64  `json:"events_seen"`
	PlainWallS    float64 `json:"plain_wall_seconds"`
	ObservedWallS float64 `json:"observed_wall_seconds"`
	OverheadFrac  float64 `json:"overhead_frac"`
}

// recoveryOverhead records the price of self-healing at scale: the same
// SUMMA-over-ARQ point run clean and under a seeded silent-drop plan, with
// the protocol counters and the recovered run's T/E surcharge. The product
// must stay bit-identical — retransmission changes when work happens, never
// what is computed.
type recoveryOverhead struct {
	Algorithm       string  `json:"algorithm"`
	P               int     `json:"p"`
	DropProb        float64 `json:"drop_prob"`
	Retransmits     int     `json:"retransmits"`
	Timeouts        int     `json:"timeouts"`
	OptimisticSends int     `json:"optimistic_sends"`
	BitIdentical    bool    `json:"bit_identical"`
	CleanWallS      float64 `json:"clean_wall_seconds"`
	ChaosWallS      float64 `json:"chaos_wall_seconds"`
	CleanSimT       float64 `json:"clean_sim_time_s"`
	ChaosSimT       float64 `json:"chaos_sim_time_s"`
	CleanEnergyJ    float64 `json:"clean_energy_joules"`
	ChaosEnergyJ    float64 `json:"chaos_energy_joules"`
}

// campaignBench records the chaos-campaign engine's footprint: one full
// event-backend sweep of the seeded under-provisioned-detector target (the
// red/green fixture pinned across the test suite), including delta-debugging
// the first finding to its minimal reproducer. Cells, runs and coordinate
// counts are deterministic and must not drift; wall time is the committed
// scaling signal for the engine itself.
type campaignBench struct {
	Workload         string  `json:"workload"`
	P                int     `json:"p"`
	Cells            int     `json:"cells"`
	Runs             int     `json:"runs"`
	Findings         int     `json:"findings"`
	ShrinkRuns       int     `json:"shrink_runs"`
	DiscoveredCoords int     `json:"discovered_coords"`
	MinimizedCoords  int     `json:"minimized_coords"`
	WallSeconds      float64 `json:"wall_seconds"`
}

type report struct {
	Machine       string              `json:"machine"`
	N             int                 `json:"n"`
	Runs          []runRecord         `json:"runs"`
	Comparisons   []comparison        `json:"dense_vs_sparse"`
	Backends      []backendComparison `json:"goroutine_vs_event,omitempty"`
	TraceOverhead *traceOverhead      `json:"trace_overhead,omitempty"`
	Recovery      *recoveryOverhead   `json:"recovery_overhead,omitempty"`
	Campaign      *campaignBench      `json:"campaign,omitempty"`
	// Conformance is the quick model-conformance sweep (the CI gate), with
	// its wall time, so the gate's cost is tracked alongside the simulator's
	// own scaling numbers.
	Conformance *conformance.Report `json:"conformance,omitempty"`
	// ScalingCurves are the strong- and weak-scaling efficiency-vs-p rows
	// (both backends), committable as the scaling-gate baseline.
	ScalingCurves []analytics.CurvePoint `json:"scaling_curves,omitempty"`
}

// vmHWM reads the process's peak resident set (kB) from /proc/self/status;
// it returns 0 where that interface does not exist.
func vmHWM() uint64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb
	}
	return 0
}

type algo struct {
	name string
	run  func(cost sim.Cost, q, c int, a, b *matrix.Dense) (*matmul.RunResult, error)
}

type point struct {
	q, c int
	// denseToo also runs the point under dense wiring and records the
	// bit-identical comparison. Kept to p ≤ 1024: dense wiring at 4096
	// ranks allocates a 16M-entry queue matrix, at 16384 a 268M-entry one.
	denseToo bool
}

func main() {
	var (
		out      = flag.String("out", "BENCH_sim.json", "output JSON path")
		mach     = flag.String("machine", "simdefault", "machine preset name or .json parameter file")
		n        = flag.Int("n", 256, "matrix dimension (must be divisible by every grid size)")
		big      = flag.Bool("big", true, "include the p=16384 run (sparse wiring only)")
		huge     = flag.Bool("huge", true, "include the event-backend p=65536..1048576 family")
		smoke    = flag.Bool("smoke", false, "run only the p=65536 event-backend point and exit (CI smoke)")
		srv      = flag.Bool("serve", false, "benchmark the query service instead of the simulator")
		serveOut = flag.String("serveout", "BENCH_serve.json", "output JSON path for -serve")

		curvesOnly   = flag.Bool("curves-only", false, "run only the scaling-curve sweep and exit")
		curvesOut    = flag.String("curves-out", "", "also write the curves as a standalone JSON artifact (default BENCH_scaling.json with -curves-only)")
		checkScaling = flag.String("check-scaling", "", "baseline curves JSON; exit non-zero when any curve regresses beyond -scaling-tol")
		scalingTol   = flag.Float64("scaling-tol", analytics.DefaultGateTolerance, "scaling-gate relative tolerance")
	)
	flag.Parse()

	// The workload is almost all transient garbage (per-step message
	// payloads) over a small live set, so the default GOGC=100 spends a
	// large fraction of every row in back-to-back collections. Relax the
	// target; this applies to every row equally, so comparisons and
	// speedup ratios are unaffected.
	debug.SetGCPercent(1000)

	m, err := machine.Resolve(*mach)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *srv {
		if err := serveBench(m, *serveOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *curvesOnly {
		// The CI scaling gate's fast path: measure the efficiency-vs-p
		// curves on both backends, write the standalone artifact, and gate
		// against the committed baseline if one was given.
		curves, err := scalingCurves(m)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		outPath := *curvesOut
		if outPath == "" {
			outPath = "BENCH_scaling.json"
		}
		if err := analytics.WriteCurves(outPath, *mach, curves); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d curve rows)\n", outPath, len(curves))
		if *checkScaling != "" && !gateScaling(curves, *checkScaling, *scalingTol) {
			os.Exit(1)
		}
		return
	}

	algos := []algo{
		{"2.5D-cannon", matmul.TwoPointFiveD},
		{"2.5D-summa", matmul.TwoPointFiveDSUMMA},
	}
	points := []point{
		{q: 16, c: 1, denseToo: true}, // p = 256
		{q: 32, c: 1, denseToo: true}, // p = 1024
		{q: 16, c: 4, denseToo: true}, // p = 1024, replicated
		{q: 64, c: 1},                 // p = 4096: dense would need 16M queues
	}
	bigPoint := point{q: 64, c: 4} // p = 16384: infeasible before sparse wiring

	a := matrix.Random(*n, *n, 1)
	b := matrix.Random(*n, *n, 2)

	// The simulated virtual-time cost comes from the machine's per-op
	// times; ChanCap is kept small so queue buffers stay cheap at large p.
	cost := sim.Cost{
		GammaT: m.GammaT, BetaT: m.BetaT, AlphaT: m.AlphaT,
		ChanCap:         8,
		WatchdogTimeout: 10 * time.Minute,
	}

	rep := report{Machine: *mach, N: *n}

	measureOn := func(al algo, pt point, w sim.Wiring, rt sim.Runtime, dim int, ma, mb *matrix.Dense) (runRecord, *matmul.RunResult) {
		c := cost
		c.Wiring = w
		c.Runtime = rt
		// Collect the previous row's garbage before the clock starts: with
		// the relaxed GC target, an earlier row's heap (the dense p = 1024
		// matrix is ~1M queues) otherwise lingers into this row's window
		// and its cache/page pressure inflates the measurement severalfold.
		runtime.GC()
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		res, err := al.run(c, pt.q, pt.c, ma, mb)
		wall := time.Since(start)
		runtime.ReadMemStats(&ms1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s q=%d c=%d (%v, %v): %v\n", al.name, pt.q, pt.c, w, rt, err)
			os.Exit(1)
		}
		mx := res.Sim.MaxStats()
		rec := runRecord{
			Algorithm: al.name, Q: pt.q, C: pt.c, P: pt.q * pt.q * pt.c, N: dim,
			Wiring:       w.String(),
			Runtime:      rt.String(),
			WallSeconds:  wall.Seconds(),
			AllocBytes:   ms1.TotalAlloc - ms0.TotalAlloc,
			PeakRSSKB:    vmHWM(),
			ActivePairs:  res.Sim.ActivePairs,
			SimTime:      res.Sim.Time(),
			EnergyJoules: core.PriceSim(m, res.Sim).Total(),
			MaxFlops:     mx.Flops,
			MaxWordsSent: mx.WordsSent,
			MaxMsgsSent:  mx.MsgsSent,
			MaxMemWords:  mx.PeakMemWords,
		}
		return rec, res
	}
	measure := func(al algo, pt point, w sim.Wiring) (runRecord, *matmul.RunResult) {
		return measureOn(al, pt, w, sim.RuntimeGoroutine, *n, a, b)
	}
	printRec := func(rec runRecord) {
		fmt.Printf("%-12s p=%-7d %-7s %-9s wall=%8.3fs pairs=%-8d T=%.4gs E=%.4gJ\n",
			rec.Algorithm, rec.P, rec.Wiring, rec.Runtime, rec.WallSeconds,
			rec.ActivePairs, rec.SimTime, rec.EnergyJoules)
	}
	// compareBackends runs the same point on the event backend, records its
	// row, and pins the bit-identical comparison against the goroutine run.
	compareBackends := func(al algo, pt point, gRec runRecord, gRes *matmul.RunResult) {
		eRec, eRes := measureOn(al, pt, sim.WiringSparse, sim.RuntimeEvent, *n, a, b)
		rep.Runs = append(rep.Runs, eRec)
		printRec(eRec)
		identical := gRes.C.MaxAbsDiff(eRes.C) == 0
		for id := range gRes.Sim.PerRank {
			if gRes.Sim.PerRank[id] != eRes.Sim.PerRank[id] {
				identical = false
				break
			}
		}
		rep.Backends = append(rep.Backends, backendComparison{
			Algorithm: al.name, P: gRec.P,
			BitIdentical:  identical,
			GoroutineWall: gRec.WallSeconds,
			EventWall:     eRec.WallSeconds,
			Speedup:       gRec.WallSeconds / eRec.WallSeconds,
		})
		if !identical {
			fmt.Fprintf(os.Stderr, "%s p=%d: goroutine and event results DIVERGED\n", al.name, gRec.P)
			os.Exit(1)
		}
	}

	if *smoke {
		// CI smoke: one p = 65536 event-backend run proves the engine still
		// hosts scales the goroutine runtime cannot, without paying for the
		// full sweep. No report is written.
		const smokeN = 512
		sa := matrix.Random(smokeN, smokeN, 3)
		sb := matrix.Random(smokeN, smokeN, 4)
		rec, _ := measureOn(algos[0], point{q: 128, c: 4}, sim.WiringSparse, sim.RuntimeEvent, smokeN, sa, sb)
		printRec(rec)
		return
	}

	for _, al := range algos {
		for _, pt := range points {
			sparseRec, sparseRes := measure(al, pt, sim.WiringSparse)
			rep.Runs = append(rep.Runs, sparseRec)
			printRec(sparseRec)
			compareBackends(al, pt, sparseRec, sparseRes)
			if !pt.denseToo {
				continue
			}
			denseRec, denseRes := measure(al, pt, sim.WiringDense)
			rep.Runs = append(rep.Runs, denseRec)
			printRec(denseRec)

			identical := denseRes.C.MaxAbsDiff(sparseRes.C) == 0
			for id := range denseRes.Sim.PerRank {
				if denseRes.Sim.PerRank[id] != sparseRes.Sim.PerRank[id] {
					identical = false
					break
				}
			}
			rep.Comparisons = append(rep.Comparisons, comparison{
				Algorithm: al.name, P: sparseRec.P,
				BitIdentical: identical,
				DenseWallS:   denseRec.WallSeconds,
				SparseWallS:  sparseRec.WallSeconds,
				DensePairs:   denseRec.ActivePairs,
				SparsePairs:  sparseRec.ActivePairs,
			})
			if !identical {
				fmt.Fprintf(os.Stderr, "%s p=%d: dense and sparse results DIVERGED\n", al.name, sparseRec.P)
				os.Exit(1)
			}
		}
	}

	// Observation cost: the same p = 1024 point blind vs subscribed to the
	// bounded ring buffer (the configuration recommended for large runs).
	// Host speed drifts between runs (shared boxes, frequency scaling), so
	// timing a plain block and then an observed block confounds drift with
	// the effect. Instead: interleave plain/observed pairs and take the
	// median of the paired ratios — adjacent runs see the same box, so the
	// drift cancels; the median shrugs off GC outliers.
	{
		al := algos[0]
		pt := point{q: 32, c: 1}
		const ringCap = 4096
		const pairs = 7
		var ring *obs.RingBuffer
		runOnce := func(withRing bool) float64 {
			c := cost
			if withRing {
				ring = obs.NewRingBuffer(ringCap)
				c.Observers = []sim.Observer{ring}
			}
			start := time.Now()
			if _, err := al.run(c, pt.q, pt.c, a, b); err != nil {
				fmt.Fprintf(os.Stderr, "trace overhead %s q=%d: %v\n", al.name, pt.q, err)
				os.Exit(1)
			}
			return time.Since(start).Seconds()
		}
		runOnce(false) // warm both code paths before timing
		runOnce(true)
		ratios := make([]float64, 0, pairs)
		plain, observed := 0.0, 0.0
		for i := 0; i < pairs; i++ {
			pw := runOnce(false)
			ow := runOnce(true)
			ratios = append(ratios, ow/pw)
			if i == 0 || pw < plain {
				plain = pw
			}
			if i == 0 || ow < observed {
				observed = ow
			}
		}
		sort.Float64s(ratios)
		rep.TraceOverhead = &traceOverhead{
			Algorithm: al.name, P: pt.q * pt.q * pt.c,
			RingCapacity:  ringCap,
			EventsSeen:    ring.Total(),
			PlainWallS:    plain,
			ObservedWallS: observed,
			OverheadFrac:  ratios[len(ratios)/2] - 1,
		}
		fmt.Printf("trace overhead p=%d: plain %.3fs, ring-observed %.3fs (median paired ratio %+.1f%%, %d events)\n",
			rep.TraceOverhead.P, plain, observed, 100*rep.TraceOverhead.OverheadFrac, ring.Total())
	}

	// Recovery overhead at p = 256: SUMMA over the ARQ endpoints, clean vs
	// a seeded plan of silent drops. Every masked drop costs about one
	// watchdog window of real time (timers fire at quiescence), so the drop
	// rate is kept low and the chaos run gets a short window.
	{
		const q, dropProb = 16, 0.001
		arqCfg := resilience.ARQDefaults(cost, (*n/q)*(*n/q))
		start := time.Now()
		clean, err := resilience.SUMMAARQ(cost, q, arqCfg, a, b)
		cleanWall := time.Since(start).Seconds()
		if err != nil {
			fmt.Fprintf(os.Stderr, "recovery clean baseline q=%d: %v\n", q, err)
			os.Exit(1)
		}
		chaosCost := cost
		chaosCost.WatchdogTimeout = 15 * time.Millisecond
		chaosCost.Faults = &sim.FaultPlan{
			Seed:  23,
			Links: []sim.LinkFault{{Src: -1, Dst: -1, DropProb: dropProb}},
		}
		start = time.Now()
		chaos, err := resilience.SUMMAARQ(chaosCost, q, arqCfg, a, b)
		chaosWall := time.Since(start).Seconds()
		if err != nil {
			fmt.Fprintf(os.Stderr, "recovery chaos run q=%d: %v\n", q, err)
			os.Exit(1)
		}
		arqRep := chaos.Report()
		identical := chaos.C.MaxAbsDiff(clean.C) == 0
		rep.Recovery = &recoveryOverhead{
			Algorithm: "summa-arq", P: q * q, DropProb: dropProb,
			Retransmits:     arqRep.Retransmits,
			Timeouts:        arqRep.Timeouts,
			OptimisticSends: arqRep.OptimisticSends,
			BitIdentical:    identical,
			CleanWallS:      cleanWall,
			ChaosWallS:      chaosWall,
			CleanSimT:       clean.Sim.Time(),
			ChaosSimT:       chaos.Sim.Time(),
			CleanEnergyJ:    core.PriceSim(m, clean.Sim).Total(),
			ChaosEnergyJ:    core.PriceSim(m, chaos.Sim).Total(),
		}
		fmt.Printf("recovery p=%d drop=%g: retx=%d optimistic=%d T %.4gs->%.4gs E %.4gJ->%.4gJ (wall %.3fs->%.3fs)\n",
			q*q, dropProb, arqRep.Retransmits, arqRep.OptimisticSends,
			clean.Sim.Time(), chaos.Sim.Time(),
			rep.Recovery.CleanEnergyJ, rep.Recovery.ChaosEnergyJ, cleanWall, chaosWall)
		if !identical {
			fmt.Fprintf(os.Stderr, "recovery p=%d: drop-masked product DIVERGED from the clean run\n", q*q)
			os.Exit(1)
		}
	}

	// Chaos-campaign footprint: the seeded detector violation swept end to
	// end on the event backend — enumeration, the structured+random corpus,
	// invariant checks, and the ddmin shrink of the finding. Everything but
	// the wall clock is deterministic, so cell/run/coordinate drift in review
	// means the engine changed behavior, not the host.
	{
		cfg := campaign.Config{
			Target: campaign.Target{
				N: 16, Q: 4,
				MaxAttempts: 3, MaxRTOFactor: 8, DetectorRTOs: 4, DetectorMisses: 2,
			},
			RandomPlans: 2,
		}
		eng, err := campaign.New(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "campaign bench:", err)
			os.Exit(1)
		}
		start := time.Now()
		st, err := eng.Run(campaign.RunOpts{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "campaign bench:", err)
			os.Exit(1)
		}
		cb := &campaignBench{
			Workload: st.Config.Target.Workload, P: st.Config.Target.Ranks(),
			Cells: len(st.Cells), Runs: st.RunsUsed, Findings: len(st.Findings),
			WallSeconds: time.Since(start).Seconds(),
		}
		if len(st.Findings) > 0 && st.Findings[0].Repro != nil {
			r := st.Findings[0].Repro
			cb.ShrinkRuns = r.ShrinkRuns
			cb.DiscoveredCoords = r.DiscoveredCoords
			cb.MinimizedCoords = r.MinimizedCoords
		}
		rep.Campaign = cb
		fmt.Printf("campaign p=%d: %d cells, %d runs, %d findings, shrink %d → %d coords in %d runs, wall=%.3fs\n",
			cb.P, cb.Cells, cb.Runs, cb.Findings, cb.DiscoveredCoords, cb.MinimizedCoords, cb.ShrinkRuns, cb.WallSeconds)
		if cb.Findings == 0 || cb.MinimizedCoords >= cb.DiscoveredCoords {
			fmt.Fprintln(os.Stderr, "campaign bench: seeded detector violation not found or not minimized")
			os.Exit(1)
		}
	}

	if *big {
		// The scale demonstration: p = 16384 under sparse wiring only.
		// Dense wiring would allocate p² = 268M queues (hundreds of GB of
		// channel buffers) before the first simulated flop. Both runtimes
		// run it; the comparison pins the event engine's speedup where the
		// goroutine backend is still feasible.
		al := algos[0]
		rec, res := measure(al, bigPoint, sim.WiringSparse)
		rep.Runs = append(rep.Runs, rec)
		printRec(rec)
		compareBackends(al, bigPoint, rec, res)
	}

	if *huge {
		// Beyond the goroutine backend: the event engine prices runs the
		// per-rank-goroutine runtime cannot host in reasonable wall time.
		// n = 512 keeps every grid size a divisor; the p = 1048576 row is
		// the headline — a million simulated ranks on one host.
		al := algos[0]
		const hugeN = 512
		ha := matrix.Random(hugeN, hugeN, 3)
		hb := matrix.Random(hugeN, hugeN, 4)
		for _, pt := range []point{
			{q: 128, c: 4},  // p = 65536
			{q: 128, c: 16}, // p = 262144
			{q: 256, c: 16}, // p = 1048576
		} {
			rec, _ := measureOn(al, pt, sim.WiringSparse, sim.RuntimeEvent, hugeN, ha, hb)
			rep.Runs = append(rep.Runs, rec)
			printRec(rec)
		}
	}

	// The conformance gate's wall time, measured on the same host as the
	// scaling runs above. Violations are a hard failure: a bench report is
	// only meaningful for a simulator that still matches the model.
	{
		start := time.Now()
		confRep, err := conformance.Sweep(conformance.Config{Machine: m, Level: conformance.Quick})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		confRep.WallSeconds = time.Since(start).Seconds()
		rep.Conformance = confRep
		fmt.Printf("conformance quick: %d points, %d checks, %d violations, wall=%0.3fs\n",
			confRep.Points, confRep.Checks, len(confRep.Violations), confRep.WallSeconds)
		if !confRep.Ok() {
			for _, v := range confRep.Violations {
				fmt.Fprintln(os.Stderr, "  "+v.String())
			}
			os.Exit(1)
		}
	}

	// Scaling curves on both backends: the efficiency-vs-p rows committed
	// with the report and gated against the baseline in CI.
	scalingOK := true
	{
		start := time.Now()
		curves, err := scalingCurves(m)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rep.ScalingCurves = curves
		fmt.Printf("scaling curves: %d rows (both backends), wall=%.3fs\n",
			len(curves), time.Since(start).Seconds())
		if *curvesOut != "" {
			if err := analytics.WriteCurves(*curvesOut, *mach, curves); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d curve rows)\n", *curvesOut, len(curves))
		}
		if *checkScaling != "" {
			scalingOK = gateScaling(curves, *checkScaling, *scalingTol)
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d runs, %d comparisons)\n", *out, len(rep.Runs), len(rep.Comparisons))
	if !scalingOK {
		os.Exit(1)
	}
}
