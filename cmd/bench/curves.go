package main

import (
	"fmt"
	"os"

	"perfscale/internal/analytics"
	"perfscale/internal/machine"
	"perfscale/internal/sim"
)

// scalingCurves measures the quick strong+weak efficiency-vs-p sweep on
// both simulator backends — the rows BENCH_sim.json commits and the CI
// scaling gate compares against its baseline.
func scalingCurves(m machine.Params) ([]analytics.CurvePoint, error) {
	var all []analytics.CurvePoint
	for _, rt := range []sim.Runtime{sim.RuntimeGoroutine, sim.RuntimeEvent} {
		rows, err := analytics.QuickCurves(m, rt)
		if err != nil {
			return nil, fmt.Errorf("scaling curves (%v): %w", rt, err)
		}
		all = append(all, rows...)
	}
	return all, nil
}

// gateScaling compares measured curves against the committed baseline and
// reports whether the gate passes; every regression is printed to stderr.
func gateScaling(curves []analytics.CurvePoint, baselinePath string, tol float64) bool {
	base, err := analytics.LoadCurves(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scaling gate:", err)
		return false
	}
	regs := analytics.CheckCurves(curves, base, tol)
	for _, r := range regs {
		fmt.Fprintln(os.Stderr, "SCALING REGRESSION:", r.String())
	}
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "scaling gate: %d regressions against %s (tolerance %g)\n",
			len(regs), baselinePath, tol)
		return false
	}
	fmt.Printf("scaling gate: %d rows within tolerance %g of %s\n", len(curves), tol, baselinePath)
	return true
}
