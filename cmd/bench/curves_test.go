package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"perfscale/internal/analytics"
)

// The test binary re-executes itself with BENCH_RUN_MAIN=1 so main() runs
// exactly as shipped, flag parsing and exit codes included.
func TestMain(m *testing.M) {
	if os.Getenv("BENCH_RUN_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

func runBench(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "BENCH_RUN_MAIN=1")
	out, err := cmd.CombinedOutput()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("bench %v did not run: %v\n%s", args, err, out)
		}
		code = ee.ExitCode()
	}
	return string(out), code
}

// TestScalingGate pins the acceptance criterion: the clean sweep passes
// against its own baseline, and a synthetically regressed baseline makes
// the gate exit non-zero.
func TestScalingGate(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "baseline.json")
	out, code := runBench(t, "-curves-only", "-curves-out", basePath)
	if code != 0 {
		t.Fatalf("curve sweep failed (%d):\n%s", code, out)
	}

	// Clean gate: fresh sweep vs its own artifact passes (rows are
	// virtual-time quantities, so they reproduce bit-for-bit).
	out, code = runBench(t, "-curves-only", "-curves-out", filepath.Join(dir, "cur.json"),
		"-check-scaling", basePath)
	if code != 0 {
		t.Fatalf("clean gate exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "within tolerance") {
		t.Fatalf("gate verdict missing:\n%s", out)
	}

	// Regressed baseline: claim the baseline was 10% more efficient than
	// reality; the fresh sweep must fail the gate.
	base, err := analytics.LoadCurves(basePath)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		base[i].Efficiency *= 1.10
		base[i].SimT *= 0.90
	}
	regressedPath := filepath.Join(dir, "regressed.json")
	if err := analytics.WriteCurves(regressedPath, "simdefault", base); err != nil {
		t.Fatal(err)
	}
	out, code = runBench(t, "-curves-only", "-curves-out", filepath.Join(dir, "cur2.json"),
		"-check-scaling", regressedPath)
	if code == 0 {
		t.Fatalf("regressed gate exited 0:\n%s", out)
	}
	if !strings.Contains(out, "SCALING REGRESSION") {
		t.Fatalf("regressions not reported:\n%s", out)
	}

	// The artifact carries both backends and all three algorithm families.
	cur, err := analytics.LoadCurves(filepath.Join(dir, "cur.json"))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, r := range cur {
		seen[r.Family+"/"+r.Algorithm] = true
		seen["rt/"+r.Runtime] = true
	}
	for _, want := range []string{
		"strong/matmul-2.5d", "weak/matmul-2.5d",
		"strong/nbody", "weak/nbody", "weak/fft-tree",
		"rt/goroutine", "rt/event",
	} {
		if !seen[want] {
			t.Fatalf("curve artifact misses %s (have %v)", want, seen)
		}
	}
}
