// Command serve runs the hardened co-design query service: closed-form
// pricing and optimization of the paper's model on a cheap lane, bounded
// live simulations on a heavy lane, with per-request deadlines, admission
// control and graceful drain on SIGTERM. See docs/SERVE.md.
//
// Usage:
//
//	serve -addr :8080 -machine simdefault
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"perfscale/internal/machine"
	"perfscale/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	machineName := flag.String("machine", "simdefault", "default machine preset or JSON file (requests may override with ?machine=<preset>)")
	heavyWorkers := flag.Int("heavy-workers", 0, "heavy-lane worker pool size (0 = default)")
	heavyQueue := flag.Int("heavy-queue", 0, "heavy-lane queue bound (0 = default, negative = no queue)")
	cheapWorkers := flag.Int("cheap-workers", 0, "cheap-lane worker pool size (0 = default)")
	cheapQueue := flag.Int("cheap-queue", 0, "cheap-lane queue bound (0 = default, negative = no queue)")
	maxSimRanks := flag.Int("max-sim-ranks", 0, "largest p = q²·c admitted to /simulate (0 = default)")
	maxSimN := flag.Int("max-sim-n", 0, "largest n admitted to /simulate (0 = default)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "grace period for in-flight requests on shutdown before their contexts are cancelled")
	flag.Parse()

	m, err := machine.Resolve(*machineName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(2)
	}

	s := serve.New(serve.Options{
		Machine:      m,
		CheapWorkers: *cheapWorkers,
		CheapQueue:   *cheapQueue,
		HeavyWorkers: *heavyWorkers,
		HeavyQueue:   *heavyQueue,
		MaxSimRanks:  *maxSimRanks,
		MaxSimN:      *maxSimN,
		MetricsSink:  os.Stderr,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "serve: listening on %s (machine %s)\n", *addr, m.Name)

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "serve: draining...")

	// Two-phase shutdown: flip readiness and refuse new managed work, give
	// in-flight requests the grace period, then cancel their contexts —
	// which aborts any running simulations — and close the listener.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if _, err := s.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "serve: shutdown: %v\n", err)
		os.Exit(1)
	}
	<-errCh // ListenAndServe returns ErrServerClosed after Shutdown
	fmt.Fprintln(os.Stderr, "serve: drained")
}
