// Command simverify runs every distributed algorithm on the virtual-time
// simulator, checks its numerical output against the serial reference, and
// prints measured-versus-model communication and energy figures: the
// end-to-end evidence that the implementations attain the paper's cost
// expressions.
//
// Usage:
//
//	simverify            # everything
//	simverify -alg lu    # one of: matmul, gemv, strassen, lu, cholesky, qr, nbody, fft
package main

import (
	"flag"
	"fmt"
	"os"

	"math"

	"perfscale/internal/bounds"
	"perfscale/internal/core"
	"perfscale/internal/fft"
	"perfscale/internal/lu"
	"perfscale/internal/machine"
	"perfscale/internal/matmul"
	"perfscale/internal/matrix"
	"perfscale/internal/nbody"
	"perfscale/internal/qr"
	"perfscale/internal/report"
	"perfscale/internal/sim"
	"perfscale/internal/strassen"
)

func main() {
	alg := flag.String("alg", "all", "algorithm: matmul, gemv, strassen, lu, cholesky, qr, nbody, fft, all")
	mach := flag.String("machine", "simdefault", "machine preset name or .json parameter file")
	flag.Parse()

	m, err := machine.Resolve(*mach)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cost := sim.Cost{GammaT: m.GammaT, BetaT: m.BetaT, AlphaT: m.AlphaT, MaxMsgWords: int(m.MaxMsgWords)}

	ok := true
	run := func(name string, fn func(machine.Params, sim.Cost) error) {
		if *alg != "all" && *alg != name {
			return
		}
		fmt.Printf("=== %s ===\n", name)
		if err := fn(m, cost); err != nil {
			ok = false
			fmt.Printf("FAILED: %v\n\n", err)
		} else {
			fmt.Println()
		}
	}
	run("matmul", verifyMatMul)
	run("gemv", verifyGemv)
	run("strassen", verifyStrassen)
	run("lu", verifyLU)
	run("cholesky", verifyCholesky)
	run("qr", verifyQR)
	run("nbody", verifyNBody)
	run("fft", verifyFFT)
	if !ok {
		os.Exit(1)
	}
}

// priceMeasured applies Eq. 2 to the measured busiest-rank counters.
func priceMeasured(m machine.Params, res *sim.Result, p float64) (measuredE float64) {
	s := res.MaxStats()
	c := bounds.Costs{Flops: s.Flops, Words: s.WordsSent, Msgs: s.MsgsSent}
	r := core.Eval(m, c, p, s.PeakMemWords)
	// Use the simulated time (which includes waiting) for the T-dependent
	// terms rather than the busiest rank's own cost sum.
	e := r.Energy
	e.Memory = p * m.DeltaE * s.PeakMemWords * res.Time()
	e.Leakage = p * m.EpsilonE * res.Time()
	return e.Total()
}

func compareRow(t *report.Table, what string, measured, model float64) {
	ratio := 0.0
	if model != 0 {
		ratio = measured / model
	}
	t.AddRow(what, measured, model, ratio)
}

func verifyMatMul(m machine.Params, cost sim.Cost) error {
	const n, q, c = 96, 4, 2 // p = 32
	a := matrix.Random(n, n, 1)
	b := matrix.Random(n, n, 2)
	want := matmul.Serial(a, b)
	res, err := matmul.TwoPointFiveD(cost, q, c, a, b)
	if err != nil {
		return err
	}
	if d := res.C.MaxAbsDiff(want); d > 1e-9*n {
		return fmt.Errorf("numerical mismatch: %g", d)
	}
	fmt.Printf("2.5D matmul n=%d on %d ranks: matches serial\n", n, q*q*c)
	s := res.Sim.MaxStats()
	model := bounds.MatMul25D(n, q*q*c, c)
	t := report.NewTable("busiest rank vs model (constant factors differ; shapes should match)",
		"quantity", "measured", "model", "ratio")
	compareRow(t, "F (flops)", s.Flops, model.Flops*2) // model drops the factor 2 of multiply-add
	compareRow(t, "W (words sent)", s.WordsSent, model.Words)
	compareRow(t, "S (messages)", s.MsgsSent, model.Msgs)
	compareRow(t, "M (words)", s.PeakMemWords, float64(c*n*n)/float64(q*q*c))
	r := core.Eval(m, model, q*q*c, s.PeakMemWords)
	compareRow(t, "T (s)", res.Sim.Time(), r.TotalTime())
	compareRow(t, "E (J)", priceMeasured(m, res.Sim, q*q*c), r.TotalEnergy())
	fmt.Println(t.Render())
	return nil
}

func verifyStrassen(m machine.Params, cost sim.Cost) error {
	const n, k = 56, 1 // p = 7
	a := matrix.Random(n, n, 3)
	b := matrix.Random(n, n, 4)
	want := matmul.Serial(a, b)
	res, err := strassen.CAPS(cost, k, a, b, 8)
	if err != nil {
		return err
	}
	if d := res.C.MaxAbsDiff(want); d > 1e-9*n {
		return fmt.Errorf("numerical mismatch: %g", d)
	}
	fmt.Printf("CAPS Strassen n=%d on 7 ranks: matches serial\n", n)
	s := res.Sim.MaxStats()
	mem := s.PeakMemWords
	model := bounds.FastMatMul(n, 7, mem, m.MaxMsgWords, bounds.OmegaStrassen)
	t := report.NewTable("busiest rank vs model", "quantity", "measured", "model", "ratio")
	compareRow(t, "F (flops)", s.Flops, model.Flops)
	compareRow(t, "W (words sent)", s.WordsSent, model.Words)
	compareRow(t, "M (words)", mem, 3*n*n/pow(7, 2/bounds.OmegaStrassen))
	fmt.Println(t.Render())
	return nil
}

func verifyLU(m machine.Params, cost sim.Cost) error {
	const n, q, c = 64, 4, 2
	a := matrix.RandomDiagDominant(n, 5)
	res, err := lu.Stacked(cost, q, c, a)
	if err != nil {
		return err
	}
	if d := matrix.Mul(res.L, res.U).MaxAbsDiff(a); d > 1e-8*n {
		return fmt.Errorf("residual %g", d)
	}
	fmt.Printf("stacked LU n=%d on %d ranks: L·U matches A\n", n, q*q*c)
	s := res.Sim.MaxStats()
	model := bounds.LU25D(n, q*q*c, s.PeakMemWords)
	t := report.NewTable("busiest rank vs model", "quantity", "measured", "model", "ratio")
	compareRow(t, "F (flops)", s.Flops, model.Flops)
	compareRow(t, "W (words sent)", s.WordsSent, model.Words)
	compareRow(t, "S (messages)", s.MsgsSent, model.Msgs)
	fmt.Println(t.Render())

	// The Section IV claim: latency does not scale. Compare critical-path
	// message time at c=1 vs c=4 under a latency-only clock.
	lat := sim.Cost{AlphaT: 1}
	r1, err := lu.Stacked(lat, q, 1, a)
	if err != nil {
		return err
	}
	r4, err := lu.Stacked(lat, q, 4, a)
	if err != nil {
		return err
	}
	fmt.Printf("latency-only critical path: c=1 -> %g alphas, c=4 -> %g alphas (does not scale)\n",
		r1.Sim.Time(), r4.Sim.Time())
	return nil
}

func verifyNBody(m machine.Params, cost sim.Cost) error {
	const n, p, c = 256, 16, 2
	bodies := nbody.RandomBodies(n, 6)
	want := nbody.SerialForces(bodies)
	res, err := nbody.Replicated(cost, p, c, bodies)
	if err != nil {
		return err
	}
	if d := nbody.MaxAbsDiff(res.Forces, want); d > 1e-9 {
		return fmt.Errorf("force mismatch: %g", d)
	}
	fmt.Printf("replicated n-body n=%d on %d ranks (c=%d): matches serial\n", n, p, c)
	s := res.Sim.MaxStats()
	model := bounds.NBody(n, p, s.PeakMemWords/nbody.WordsPerBody, m.MaxMsgWords, nbody.FlopsPerPair)
	t := report.NewTable("busiest rank vs model", "quantity", "measured", "model", "ratio")
	compareRow(t, "F (flops)", s.Flops, model.Flops)
	compareRow(t, "W (words sent)", s.WordsSent, model.Words*nbody.WordsPerBody)
	fmt.Println(t.Render())
	return nil
}

func verifyFFT(m machine.Params, cost sim.Cost) error {
	const n, p = 1024, 8
	x := fft.RandomSignal(n, 7)
	want := fft.Serial(x)
	for _, tree := range []bool{false, true} {
		res, err := fft.Distributed(cost, p, x, tree)
		if err != nil {
			return err
		}
		if d := fft.MaxAbsDiff(res.Y, want); d > 1e-7*n {
			return fmt.Errorf("tree=%v: mismatch %g", tree, d)
		}
		s := res.Sim.MaxStats()
		var model bounds.Costs
		if tree {
			model = bounds.FFTTree(n, p)
		} else {
			model = bounds.FFTNaive(n, p)
		}
		t := report.NewTable(fmt.Sprintf("FFT n=%d p=%d tree=%v: matches serial", n, p, tree),
			"quantity", "measured", "model", "ratio")
		// The paper counts F = n·log n; real radix-2 FFTs spend ≈5 real ops
		// per butterfly element, so the model column carries that constant.
		compareRow(t, "F (flops)", s.Flops, 5*model.Flops)
		compareRow(t, "W (words sent)", s.WordsSent, model.Words*2) // complex = 2 words
		compareRow(t, "S (messages)", s.MsgsSent, model.Msgs)
		fmt.Println(t.Render())
	}
	return nil
}

func pow(base, exp float64) float64 { return math.Pow(base, exp) }

func verifyGemv(m machine.Params, cost sim.Cost) error {
	const n, q = 64, 4
	a := matrix.Random(n, n, 11)
	x := matrix.Random(n, 1, 12).Data
	res, err := matmul.Gemv(cost, q, a, x)
	if err != nil {
		return err
	}
	want := matmul.SerialGemv(a, x)
	for i := range want {
		if math.Abs(res.Y[i]-want[i]) > 1e-10*n {
			return fmt.Errorf("y[%d] off by %g", i, res.Y[i]-want[i])
		}
	}
	fmt.Printf("GEMV n=%d on %d ranks: matches serial\n", n, q*q)
	s := res.Sim.MaxStats()
	model := bounds.GEMV(n, q*q, m.MaxMsgWords)
	t := report.NewTable("busiest rank vs model", "quantity", "measured", "model", "ratio")
	compareRow(t, "F (flops)", s.Flops, model.Flops)
	compareRow(t, "W (words sent)", s.WordsSent, model.Words)
	fmt.Println(t.Render())
	fmt.Println("BLAS2: W is I/O-sized — no perfect-scaling region (Section III).")
	return nil
}

func verifyCholesky(m machine.Params, cost sim.Cost) error {
	const n, q = 32, 4
	a := matrix.RandomSPD(n, 13)
	res, err := lu.Cholesky(cost, q, a)
	if err != nil {
		return err
	}
	if d := matrix.Mul(res.L, res.U).MaxAbsDiff(a); d > 1e-8*n*n {
		return fmt.Errorf("residual %g", d)
	}
	fmt.Printf("Cholesky n=%d on %d ranks: L·Lᵀ matches A\n", n, q*q)
	s := res.Sim.MaxStats()
	t := report.NewTable("busiest rank", "quantity", "measured", "model (LU/2)", "ratio")
	model := bounds.LU25D(n, q*q, s.PeakMemWords)
	compareRow(t, "F (flops)", s.Flops, model.Flops/2)
	compareRow(t, "W (words sent)", s.WordsSent, model.Words)
	fmt.Println(t.Render())
	return nil
}

func verifyQR(m machine.Params, cost sim.Cost) error {
	const mm, nn, p = 256, 8, 8
	a := matrix.Random(mm, nn, 14)
	res, err := qr.TSQR(cost, p, a)
	if err != nil {
		return err
	}
	_, want, err := qr.Householder(a)
	if err != nil {
		return err
	}
	if d := res.R.MaxAbsDiff(want); d > 1e-8*mm {
		return fmt.Errorf("R mismatch %g", d)
	}
	fmt.Printf("TSQR %dx%d on %d ranks: R matches serial Householder\n", mm, nn, p)
	s := res.Sim.MaxStats()
	t := report.NewTable("busiest rank (communication independent of m)", "quantity", "measured", "model", "ratio")
	compareRow(t, "S (messages)", s.MsgsSent, 1)                            // each rank forwards one R
	compareRow(t, "root words recv", res.Sim.PerRank[0].WordsRecv, 3*nn*nn) // log2(p)·n²
	fmt.Println(t.Render())
	return nil
}
