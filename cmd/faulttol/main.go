// Command faulttol prices resilience with the paper's energy model
// (experiment E23): it runs the fault-tolerant 2.5D matmul and the
// buddy-checkpointed stencil under deterministic injected faults — rank
// crashes, corrupted links — and reports what the recovery work costs in
// simulated time and in Eq. 2 joules, as a function of the redundancy knob
// (the replication factor c, or the checkpoint interval).
//
//	-abft   ABFT 2.5D matmul: fault scenarios x replication factor c
//	-ckpt   checkpoint/rollback stencil: crash recovery x interval
//
// With no flags it runs both.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"perfscale/internal/core"
	"perfscale/internal/machine"
	"perfscale/internal/matmul"
	"perfscale/internal/matrix"
	"perfscale/internal/report"
	"perfscale/internal/resilience"
	"perfscale/internal/sim"
)

func main() {
	var (
		abft = flag.Bool("abft", false, "E23a: ABFT 2.5D matmul under crashes and corruption")
		ckpt = flag.Bool("ckpt", false, "E23b: checkpoint/rollback under crashes")
		csv  = flag.Bool("csv", false, "emit CSV instead of text tables")
		mach = flag.String("machine", "simdefault", "machine preset name or .json parameter file")
		n    = flag.Int("n", 96, "matrix dimension for the ABFT sweep")
	)
	flag.Parse()
	all := !*abft && !*ckpt

	m, err := machine.Resolve(*mach)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	emit := func(t *report.Table) {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.Render())
		}
	}

	if all || *abft {
		runABFT(emit, m, *n)
	}
	if all || *ckpt {
		runCheckpoint(emit, m)
	}
}

// simCost builds the simulator price list from a machine's time parameters.
func simCost(m machine.Params) sim.Cost {
	return sim.Cost{
		GammaT:      m.GammaT,
		BetaT:       m.BetaT,
		AlphaT:      m.AlphaT,
		MaxMsgWords: int(m.MaxMsgWords),
	}
}

// runABFT sweeps fault scenarios against the replication factor: the same
// c that buys 2.5D its communication-avoiding perfect scaling is the
// redundancy the ABFT recovery draws on, so c = 1 prices what having no
// spare copy costs (an unrecoverable run) and c > 1 prices recovery as a
// small energy surcharge over the fault-free run.
func runABFT(emit func(*report.Table), m machine.Params, n int) {
	const q = 4
	t := report.NewTable(
		fmt.Sprintf("E23a: energy-priced ABFT 2.5D matmul, n=%d, q=%d (faults vs replication factor c)", n, q),
		"c", "p", "scenario", "T_sim (s)", "E (J)", "E/E_base", "max|dC|", "status")

	a := matrix.Random(n, n, 1)
	b := matrix.Random(n, n, 2)
	want := matmul.Serial(a, b)

	for _, c := range []int{1, 2, 4} {
		p := q * q * c
		base, err := resilience.ABFT25D(simCost(m), q, c, a, b)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		baseT := base.Sim.Time()
		baseE := core.PriceSim(m, base.Sim).Total()

		scenarios := []struct {
			name  string
			plan  *sim.FaultPlan
			valid bool
		}{
			{"fault-free", nil, true},
			{"1 crash", &sim.FaultPlan{
				Seed:       5,
				Crashes:    map[int]float64{q + 1: 0.4 * baseT},
				Respawn:    true,
				RebootTime: 0.05 * baseT,
			}, true},
			{"2 crashes, distinct fibers", &sim.FaultPlan{
				Seed: 6,
				Crashes: map[int]float64{
					q + 1:               0.3 * baseT,
					(c-1)*q*q + 2*q + 3: 0.6 * baseT,
				},
				Respawn:    true,
				RebootTime: 0.05 * baseT,
			}, c > 1},
			{"corrupt replication link", &sim.FaultPlan{
				Seed:  8,
				Links: []sim.LinkFault{{Src: 0, Dst: q * q, CorruptProb: 0.5}},
			}, c > 1},
		}
		for _, sc := range scenarios {
			if !sc.valid {
				t.AddRow(c, p, sc.name, "-", "-", "-", "-", "n/a (needs c > 1)")
				continue
			}
			cost := simCost(m)
			cost.Faults = sc.plan
			res, err := resilience.ABFT25D(cost, q, c, a, b)
			if err != nil {
				// sim.Run aggregates one error per rank; the first line
				// carries the diagnosis.
				msg, _, _ := strings.Cut(err.Error(), "\n")
				t.AddRow(c, p, sc.name, "-", "-", "-", "-", msg)
				continue
			}
			e := core.PriceSim(m, res.Sim).Total()
			t.AddRow(c, p, sc.name,
				fmt.Sprintf("%.4g", res.Sim.Time()),
				fmt.Sprintf("%.4g", e),
				fmt.Sprintf("%.3f", e/baseE),
				fmt.Sprintf("%.2g", res.C.MaxAbsDiff(want)),
				statusFor(sc.plan))
		}
	}
	emit(t)
}

// runCheckpoint prices the checkpoint-interval tradeoff: frequent
// checkpoints spend energy on snapshot traffic every interval, rare ones
// spend it on longer rollback re-execution after a crash.
func runCheckpoint(emit func(*report.Table), m machine.Params) {
	const p, iters = 8, 12
	t := report.NewTable(
		fmt.Sprintf("E23b: energy-priced checkpoint/rollback stencil, p=%d, iters=%d (crash at 55%% of runtime)", p, iters),
		"every", "T_base (s)", "E_base (J)", "T_crash (s)", "E_crash (J)", "E_crash/E_base", "status")

	init := func(r *sim.Rank) []float64 {
		state := make([]float64, 64)
		for i := range state {
			state[i] = float64(r.ID()*len(state) + i)
		}
		return state
	}
	step := func(r *sim.Rank, w *sim.Comm, iter int, state []float64) []float64 {
		r.Compute(1e6)
		left := w.Shift(state, 1)
		right := w.Shift(state, -1)
		out := make([]float64, len(state))
		for i := range out {
			out[i] = 0.5*state[i] + 0.25*left[i] + 0.25*right[i]
		}
		return out
	}

	for _, every := range []int{1, 2, 4, 6} {
		base, err := resilience.RunCheckpointed(simCost(m), p, iters, every, init, step)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		baseE := core.PriceSim(m, base.Sim).Total()

		cost := simCost(m)
		cost.Faults = &sim.FaultPlan{
			Seed:       7,
			Crashes:    map[int]float64{2: 0.55 * base.Sim.Time()},
			Respawn:    true,
			RebootTime: 0.05 * base.Sim.Time(),
		}
		res, err := resilience.RunCheckpointed(cost, p, iters, every, init, step)
		if err != nil {
			t.AddRow(every, "-", "-", "-", "-", "-", err.Error())
			continue
		}
		status := "recovered"
		for id := range base.States {
			for i, v := range base.States[id] {
				if res.States[id][i] != v {
					status = "STATE MISMATCH"
				}
			}
		}
		e := core.PriceSim(m, res.Sim).Total()
		t.AddRow(every,
			fmt.Sprintf("%.4g", base.Sim.Time()),
			fmt.Sprintf("%.4g", baseE),
			fmt.Sprintf("%.4g", res.Sim.Time()),
			fmt.Sprintf("%.4g", e),
			fmt.Sprintf("%.3f", e/baseE),
			status)
	}
	emit(t)
}

// statusFor labels a completed run: "ok" for the fault-free baseline,
// "recovered" when a fault plan was actually in force.
func statusFor(plan *sim.FaultPlan) string {
	if plan == nil {
		return "ok"
	}
	return "recovered"
}
