// Command faulttol prices resilience with the paper's energy model
// (experiment E23): it runs the fault-tolerant 2.5D matmul and the
// buddy-checkpointed stencil under deterministic injected faults — rank
// crashes, corrupted links — and reports what the recovery work costs in
// simulated time and in Eq. 2 joules, as a function of the redundancy knob
// (the replication factor c, or the checkpoint interval).
//
//	-abft     ABFT 2.5D matmul: fault scenarios x replication factor c
//	-ckpt     checkpoint/rollback stencil: crash recovery x interval
//	-drops    self-healing SUMMA over ARQ: silent drops masked by
//	          virtual-time retransmission, bit-identical output
//	-detector heartbeat failure detection: observed exits, wedged peers,
//	          long compute with and without heartbeats
//	-recover  energy-priced recovery controller: the per-context strategy
//	          table and the argmin choice
//
// With no flags it runs everything.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"perfscale/internal/core"
	"perfscale/internal/machine"
	"perfscale/internal/matmul"
	"perfscale/internal/matrix"
	"perfscale/internal/report"
	"perfscale/internal/resilience"
	"perfscale/internal/sim"
)

func main() {
	var (
		abft    = flag.Bool("abft", false, "E23a: ABFT 2.5D matmul under crashes and corruption")
		ckpt    = flag.Bool("ckpt", false, "E23b: checkpoint/rollback under crashes")
		drops   = flag.Bool("drops", false, "E23c: SUMMA over ARQ under silent drops")
		det     = flag.Bool("detector", false, "E23d: heartbeat failure detection scenarios")
		rec     = flag.Bool("recover", false, "E23e: energy-priced recovery controller")
		csv     = flag.Bool("csv", false, "emit CSV instead of text tables")
		mach    = flag.String("machine", "simdefault", "machine preset name or .json parameter file")
		n       = flag.Int("n", 96, "matrix dimension for the ABFT and ARQ sweeps")
		outPath = flag.String("o", "", "write the report to this file (default stdout)")
	)
	flag.Parse()
	all := !*abft && !*ckpt && !*drops && !*det && !*rec

	m, err := machine.Resolve(*mach)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	w, closeOut, err := report.OpenOutput(*outPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faulttol:", err)
		os.Exit(1)
	}
	emit := func(t *report.Table) {
		if *csv {
			w.Printf("%s", t.CSV())
		} else {
			w.Println(t.Render())
		}
	}

	if all || *abft {
		runABFT(emit, m, *n)
	}
	if all || *ckpt {
		runCheckpoint(emit, m)
	}
	if all || *drops {
		runDrops(emit, m, *n)
	}
	if all || *det {
		runDetector(emit, m)
	}
	if all || *rec {
		runRecover(emit, m)
	}
	code := 0
	if err := w.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "faulttol: writing report:", err)
		code = 1
	}
	if err := closeOut(); err != nil {
		fmt.Fprintln(os.Stderr, "faulttol: closing output:", err)
		code = 1
	}
	if code != 0 {
		os.Exit(code)
	}
}

// simCost builds the simulator price list from a machine's time parameters.
func simCost(m machine.Params) sim.Cost {
	return sim.Cost{
		GammaT:      m.GammaT,
		BetaT:       m.BetaT,
		AlphaT:      m.AlphaT,
		MaxMsgWords: int(m.MaxMsgWords),
	}
}

// runABFT sweeps fault scenarios against the replication factor: the same
// c that buys 2.5D its communication-avoiding perfect scaling is the
// redundancy the ABFT recovery draws on, so c = 1 prices what having no
// spare copy costs (an unrecoverable run) and c > 1 prices recovery as a
// small energy surcharge over the fault-free run.
func runABFT(emit func(*report.Table), m machine.Params, n int) {
	const q = 4
	t := report.NewTable(
		fmt.Sprintf("E23a: energy-priced ABFT 2.5D matmul, n=%d, q=%d (faults vs replication factor c)", n, q),
		"c", "p", "scenario", "T_sim (s)", "E (J)", "E/E_base", "max|dC|", "status")

	a := matrix.Random(n, n, 1)
	b := matrix.Random(n, n, 2)
	want := matmul.Serial(a, b)

	for _, c := range []int{1, 2, 4} {
		p := q * q * c
		base, err := resilience.ABFT25D(simCost(m), q, c, a, b)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		baseT := base.Sim.Time()
		baseE := core.PriceSim(m, base.Sim).Total()

		scenarios := []struct {
			name  string
			plan  *sim.FaultPlan
			valid bool
		}{
			{"fault-free", nil, true},
			{"1 crash", &sim.FaultPlan{
				Seed:       5,
				Crashes:    map[int]float64{q + 1: 0.4 * baseT},
				Respawn:    true,
				RebootTime: 0.05 * baseT,
			}, true},
			{"2 crashes, distinct fibers", &sim.FaultPlan{
				Seed: 6,
				Crashes: map[int]float64{
					q + 1:               0.3 * baseT,
					(c-1)*q*q + 2*q + 3: 0.6 * baseT,
				},
				Respawn:    true,
				RebootTime: 0.05 * baseT,
			}, c > 1},
			{"corrupt replication link", &sim.FaultPlan{
				Seed:  8,
				Links: []sim.LinkFault{{Src: 0, Dst: q * q, CorruptProb: 0.5}},
			}, c > 1},
		}
		for _, sc := range scenarios {
			if !sc.valid {
				t.AddRow(c, p, sc.name, "-", "-", "-", "-", "n/a (needs c > 1)")
				continue
			}
			cost := simCost(m)
			cost.Faults = sc.plan
			res, err := resilience.ABFT25D(cost, q, c, a, b)
			if err != nil {
				// sim.Run aggregates one error per rank; the first line
				// carries the diagnosis.
				msg, _, _ := strings.Cut(err.Error(), "\n")
				t.AddRow(c, p, sc.name, "-", "-", "-", "-", msg)
				continue
			}
			e := core.PriceSim(m, res.Sim).Total()
			t.AddRow(c, p, sc.name,
				fmt.Sprintf("%.4g", res.Sim.Time()),
				fmt.Sprintf("%.4g", e),
				fmt.Sprintf("%.3f", e/baseE),
				fmt.Sprintf("%.2g", res.C.MaxAbsDiff(want)),
				statusFor(sc.plan))
		}
	}
	emit(t)
}

// runCheckpoint prices the checkpoint-interval tradeoff: frequent
// checkpoints spend energy on snapshot traffic every interval, rare ones
// spend it on longer rollback re-execution after a crash.
func runCheckpoint(emit func(*report.Table), m machine.Params) {
	const p, iters = 8, 12
	t := report.NewTable(
		fmt.Sprintf("E23b: energy-priced checkpoint/rollback stencil, p=%d, iters=%d (crash at 55%% of runtime)", p, iters),
		"every", "T_base (s)", "E_base (J)", "T_crash (s)", "E_crash (J)", "E_crash/E_base", "status")

	init := func(r *sim.Rank) []float64 {
		state := make([]float64, 64)
		for i := range state {
			state[i] = float64(r.ID()*len(state) + i)
		}
		return state
	}
	step := func(r *sim.Rank, w *sim.Comm, iter int, state []float64) []float64 {
		r.Compute(1e6)
		left := w.Shift(state, 1)
		right := w.Shift(state, -1)
		out := make([]float64, len(state))
		for i := range out {
			out[i] = 0.5*state[i] + 0.25*left[i] + 0.25*right[i]
		}
		return out
	}

	for _, every := range []int{1, 2, 4, 6} {
		base, err := resilience.RunCheckpointed(simCost(m), p, iters, every, init, step)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		baseE := core.PriceSim(m, base.Sim).Total()

		cost := simCost(m)
		cost.Faults = &sim.FaultPlan{
			Seed:       7,
			Crashes:    map[int]float64{2: 0.55 * base.Sim.Time()},
			Respawn:    true,
			RebootTime: 0.05 * base.Sim.Time(),
		}
		res, err := resilience.RunCheckpointed(cost, p, iters, every, init, step)
		if err != nil {
			t.AddRow(every, "-", "-", "-", "-", "-", err.Error())
			continue
		}
		status := "recovered"
		for id := range base.States {
			for i, v := range base.States[id] {
				if res.States[id][i] != v {
					status = "STATE MISMATCH"
				}
			}
		}
		e := core.PriceSim(m, res.Sim).Total()
		t.AddRow(every,
			fmt.Sprintf("%.4g", base.Sim.Time()),
			fmt.Sprintf("%.4g", baseE),
			fmt.Sprintf("%.4g", res.Sim.Time()),
			fmt.Sprintf("%.4g", e),
			fmt.Sprintf("%.3f", e/baseE),
			status)
	}
	emit(t)
}

// statusFor labels a completed run: "ok" for the fault-free baseline,
// "recovered" when a fault plan was actually in force.
func statusFor(plan *sim.FaultPlan) string {
	if plan == nil {
		return "ok"
	}
	return "recovered"
}

// runDrops sweeps silent-drop rates against the ARQ endpoints: faults that
// leave no evidence (no damaged frame, no duplicate — the class Reliable
// cannot mask) are recovered by virtual-time retransmission, the product
// stays bit-identical to the fault-free run, and the table prices what the
// recovery waiting costs in time and Eq. 2 joules.
func runDrops(emit func(*report.Table), m machine.Params, n int) {
	const q = 4
	t := report.NewTable(
		fmt.Sprintf("E23c: self-healing SUMMA over ARQ, n=%d, q=%d, p=%d (silent drops vs retransmission)", n, q, q*q),
		"scenario", "T_sim (s)", "E (J)", "T/T_base", "E/E_base", "retx", "dups", "optimistic", "max|dC|", "status")

	a := matrix.Random(n, n, 11)
	b := matrix.Random(n, n, 12)
	nb := n / q
	arqCfg := resilience.ARQDefaults(simCost(m), nb*nb)

	base, err := resilience.SUMMAARQ(simCost(m), q, arqCfg, a, b)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	baseT := base.Sim.Time()
	baseE := core.PriceSim(m, base.Sim).Total()

	scenarios := []struct {
		name string
		plan *sim.FaultPlan
	}{
		{"fault-free", nil},
		{"1% silent drops", &sim.FaultPlan{Seed: 13,
			Links: []sim.LinkFault{{Src: -1, Dst: -1, DropProb: 0.01}}}},
		{"5% silent drops", &sim.FaultPlan{Seed: 14,
			Links: []sim.LinkFault{{Src: -1, Dst: -1, DropProb: 0.05}}}},
		{"2% drops + 2% dup + 2% corrupt", &sim.FaultPlan{Seed: 15,
			Links: []sim.LinkFault{{Src: -1, Dst: -1, DropProb: 0.02, DupProb: 0.02, CorruptProb: 0.02}}}},
	}
	for _, sc := range scenarios {
		cost := simCost(m)
		cost.Faults = sc.plan
		if sc.plan != nil {
			// Each recovered drop costs about one watchdog window of real
			// time (timers fire at quiescence); a short window keeps the
			// sweep fast without touching the virtual results.
			cost.WatchdogTimeout = 15 * time.Millisecond
		}
		res, err := resilience.SUMMAARQ(cost, q, arqCfg, a, b)
		if err != nil {
			msg, _, _ := strings.Cut(err.Error(), "\n")
			t.AddRow(sc.name, "-", "-", "-", "-", "-", "-", "-", "-", msg)
			continue
		}
		rep := res.Report()
		e := core.PriceSim(m, res.Sim).Total()
		status := statusFor(sc.plan)
		if diff := res.C.MaxAbsDiff(base.C); diff != 0 {
			status = "OUTPUT DIVERGED"
		}
		t.AddRow(sc.name,
			fmt.Sprintf("%.4g", res.Sim.Time()),
			fmt.Sprintf("%.4g", e),
			fmt.Sprintf("%.3f", res.Sim.Time()/baseT),
			fmt.Sprintf("%.3f", e/baseE),
			rep.Retransmits, rep.DupsAbsorbed, rep.OptimisticSends,
			fmt.Sprintf("%.2g", res.C.MaxAbsDiff(base.C)),
			status)
	}
	emit(t)
}

// runDetector exercises the failure detector's three verdicts on a two-rank
// conversation: an observed exit is reported accurately (with the peer's
// own error as the cause), a wedged-but-alive peer is suspected after the
// probe budget, and a long compute phase is a false positive exactly until
// the computing rank covers it with heartbeats.
func runDetector(emit func(*report.Table), m machine.Params) {
	t := report.NewTable(
		"E23d: virtual-time heartbeat failure detection (p=2)",
		"scenario", "verdict", "exited", "clean", "misses", "probes", "beats", "t_detect (s)", "status")

	cost := simCost(m)
	cfg := resilience.ARQDefaults(cost, 8)
	// The detector budget is 3·DetectorInterval (two misses, backoff 2);
	// the compute scenarios below run 4 intervals of silence, so they trip
	// the detector unless heartbeats at every half interval cover them.
	cfg.DetectorMisses = 2
	interval := cfg.DetectorInterval
	chunkFlops := interval / (2 * m.GammaT)

	type verdictRow struct {
		name          string
		peer          func(r *sim.Rank, arq *resilience.ARQ) error
		me            func(r *sim.Rank, arq *resilience.ARQ) error
		expectFailure bool
	}
	crash := errors.New("injected crash")
	scenarios := []verdictRow{
		{
			name:          "peer dies (exit observed)",
			peer:          func(r *sim.Rank, arq *resilience.ARQ) error { return crash },
			me:            func(r *sim.Rank, arq *resilience.ARQ) error { _, err := arq.Recv(1); return err },
			expectFailure: true,
		},
		{
			name: "peer wedges silently",
			peer: func(r *sim.Rank, arq *resilience.ARQ) error {
				// Alive but unresponsive: consume probes, never answer.
				for {
					if _, out := r.RecvTimeout(0, 1e12); out != sim.RecvOK {
						return nil
					}
				}
			},
			me:            func(r *sim.Rank, arq *resilience.ARQ) error { _, err := arq.Recv(1); return err },
			expectFailure: true,
		},
		{
			name: "long compute, no heartbeats",
			peer: func(r *sim.Rank, arq *resilience.ARQ) error {
				for i := 0; i < 8; i++ {
					r.Compute(chunkFlops)
				}
				return arq.Send(0, []float64{1})
			},
			me:            func(r *sim.Rank, arq *resilience.ARQ) error { _, err := arq.Recv(1); return err },
			expectFailure: true,
		},
		{
			name: "long compute with heartbeats",
			peer: func(r *sim.Rank, arq *resilience.ARQ) error {
				for i := 0; i < 8; i++ {
					if err := arq.Heartbeat(0); err != nil {
						return err
					}
					r.Compute(chunkFlops)
				}
				return arq.Send(0, []float64{1})
			},
			me:            func(r *sim.Rank, arq *resilience.ARQ) error { _, err := arq.Recv(1); return err },
			expectFailure: false,
		},
	}

	for _, sc := range scenarios {
		var stats, peerStats resilience.ARQStats
		runCost := cost
		runCost.WatchdogTimeout = 15 * time.Millisecond
		_, err := sim.Run(2, runCost, func(r *sim.Rank) error {
			arq := resilience.NewARQ(r, cfg)
			if r.ID() == 1 {
				defer func() { peerStats = arq.Stats() }()
				return sc.peer(r, arq)
			}
			defer func() { stats = arq.Stats() }()
			return sc.me(r, arq)
		})
		var pf *resilience.PeerFailure
		detected := errors.As(err, &pf)
		status := "ok"
		switch {
		case detected != sc.expectFailure:
			status = "UNEXPECTED VERDICT"
		case detected:
			status = "detected"
		}
		if detected {
			t.AddRow(sc.name, "failed", pf.Exited, pf.Clean, pf.Misses,
				stats.ProbesSent, peerStats.BeatsSent, fmt.Sprintf("%.4g", pf.At), status)
		} else {
			t.AddRow(sc.name, "alive", "-", "-", stats.Misses,
				stats.ProbesSent, peerStats.BeatsSent, "-", status)
		}
	}
	emit(t)
}

// runRecover prints the energy-priced recovery controller's decision table:
// every strategy's predicted Eq. 1 time and Eq. 2 energy per failure
// context, and the argmin the controller picks. The contexts walk the
// feasibility lattice — with a replica ABFT wins, without one the buddy
// checkpoint, and with neither the controller falls back to respawning.
func runRecover(emit func(*report.Table), m machine.Params) {
	t := report.NewTable(
		fmt.Sprintf("E23e: energy-priced recovery controller on %s (strategy = argmin E over feasible set)", m.Name),
		"n", "q", "c", "step", "strategy", "feasible", "T_rec (s)", "E_rec (J)", "chosen")

	rc := resilience.NewRecoveryController(m)
	contexts := []resilience.FailureContext{
		{N: 256, Q: 4, Replicas: 2, Step: 3, Steps: 4, CheckpointPeriod: 2, HaveBuddy: true, SpareRebootTime: 0.5},
		{N: 256, Q: 4, Replicas: 1, Step: 3, Steps: 4, CheckpointPeriod: 2, HaveBuddy: true, SpareRebootTime: 0.5},
		{N: 256, Q: 4, Replicas: 1, Step: 3, Steps: 4, HaveBuddy: false, SpareRebootTime: 0.5},
		{N: 512, Q: 8, Replicas: 4, Step: 1, Steps: 8, CheckpointPeriod: 4, HaveBuddy: true, SpareRebootTime: 2},
	}
	for _, fc := range contexts {
		choice := rc.Choose(fc)
		for _, sc := range rc.Evaluate(fc) {
			feasible := "yes"
			timeCol, energyCol := fmt.Sprintf("%.4g", sc.Time), fmt.Sprintf("%.4g", sc.Energy)
			if !sc.Feasible {
				feasible = "no: " + sc.Reason
				timeCol, energyCol = "-", "-"
			}
			chosen := ""
			if sc.Feasible && sc.Strategy == choice.Strategy {
				chosen = "<== argmin E"
			}
			t.AddRow(fc.N, fc.Q, fc.Replicas, fmt.Sprintf("%d/%d", fc.Step, fc.Steps),
				sc.Strategy.String(), feasible, timeCol, energyCol, chosen)
		}
	}
	emit(t)
}
