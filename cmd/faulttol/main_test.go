package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// The test binary re-executes itself with FAULTTOL_RUN_MAIN=1 so main()
// runs exactly as shipped, flag parsing and exit codes included.
func TestMain(m *testing.M) {
	if os.Getenv("FAULTTOL_RUN_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

func runFaulttol(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "FAULTTOL_RUN_MAIN=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("faulttol %v failed: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestDefaultPrintsEverything(t *testing.T) {
	out := runFaulttol(t, "-n", "48")
	for _, want := range []string{
		"E23a: energy-priced ABFT 2.5D matmul",
		"E23b: energy-priced checkpoint/rollback stencil",
		"E23c: self-healing SUMMA over ARQ",
		"E23d: virtual-time heartbeat failure detection",
		"E23e: energy-priced recovery controller",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("default output missing %q", want)
		}
	}
}

func TestDropsMasksSilently(t *testing.T) {
	out := runFaulttol(t, "-drops", "-n", "48")
	if strings.Contains(out, "E23a") || strings.Contains(out, "E23d") {
		t.Errorf("-drops leaked other experiments:\n%s", out)
	}
	if !strings.Contains(out, "recovered") {
		t.Errorf("no drop scenario recovered:\n%s", out)
	}
	if strings.Contains(out, "OUTPUT DIVERGED") {
		t.Errorf("a recovered run diverged from the fault-free product:\n%s", out)
	}
}

func TestDetectorVerdicts(t *testing.T) {
	out := runFaulttol(t, "-detector")
	if strings.Contains(out, "UNEXPECTED VERDICT") {
		t.Errorf("a detection scenario produced the wrong verdict:\n%s", out)
	}
	for _, want := range []string{"peer dies (exit observed)", "peer wedges silently", "long compute with heartbeats"} {
		if !strings.Contains(out, want) {
			t.Errorf("detector output missing scenario %q", want)
		}
	}
}

func TestRecoverMarksArgmin(t *testing.T) {
	out := runFaulttol(t, "-recover")
	if n := strings.Count(out, "<== argmin E"); n != 4 {
		t.Errorf("want one argmin marker per context (4), got %d:\n%s", n, out)
	}
	if !strings.Contains(out, "needs a live replica") {
		t.Errorf("infeasible strategies should carry their reason:\n%s", out)
	}
}

func TestCSVMode(t *testing.T) {
	out := runFaulttol(t, "-recover", "-csv")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 2 {
		t.Fatalf("CSV output too short:\n%s", out)
	}
	if !strings.HasPrefix(lines[0], "n,") {
		t.Errorf("CSV header %q", lines[0])
	}
	if strings.Contains(out, "---") {
		t.Error("CSV mode leaked table rendering")
	}
}

// TestDropsDeterministic is the replay guarantee at the CLI surface: the
// seeded chaos plans must reproduce every retransmit count and priced
// joule bit for bit across runs.
func TestDropsDeterministic(t *testing.T) {
	if runFaulttol(t, "-drops", "-n", "48") != runFaulttol(t, "-drops", "-n", "48") {
		t.Error("two -drops runs differ")
	}
}

// TestBadMachineExitStatus checks the subprocess exit contract: an
// unresolvable machine preset must exit non-zero with a diagnostic.
func TestBadMachineExitStatus(t *testing.T) {
	cmd := exec.Command(os.Args[0], "-machine", "no-such-preset")
	cmd.Env = append(os.Environ(), "FAULTTOL_RUN_MAIN=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("unknown machine preset should fail, got:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Errorf("want exit code 2, got %v", err)
	}
}

func TestOutputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.csv")
	runFaulttol(t, "-recover", "-csv", "-o", path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("-o did not write the report: %v", err)
	}
	if !strings.HasPrefix(string(data), "n,") {
		t.Errorf("report file does not start with the CSV header:\n%s", data)
	}
}

// TestWriteFailureExitStatus: a report that cannot be written must exit 1,
// not succeed silently. /dev/full fails every write with ENOSPC.
func TestWriteFailureExitStatus(t *testing.T) {
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full not available on this platform")
	}
	cmd := exec.Command(os.Args[0], "-recover", "-csv", "-o", "/dev/full")
	cmd.Env = append(os.Environ(), "FAULTTOL_RUN_MAIN=1")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("write to /dev/full: %v, want exit 1\n%s", err, out)
	}
	if !strings.Contains(string(out), "writing report") {
		t.Errorf("missing write diagnostic:\n%s", out)
	}
}

// TestUnwritableOutputExitStatus: failing to open the output at all is
// also exit 1, before any experiment runs.
func TestUnwritableOutputExitStatus(t *testing.T) {
	cmd := exec.Command(os.Args[0], "-recover", "-o", filepath.Join(t.TempDir(), "no", "such", "dir", "out.txt"))
	cmd.Env = append(os.Environ(), "FAULTTOL_RUN_MAIN=1")
	out, err := cmd.CombinedOutput()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("unwritable -o: %v, want exit 1\n%s", err, out)
	}
}
