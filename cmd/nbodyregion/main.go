// Command nbodyregion regenerates the Figure 4 execution-region diagrams of
// the data-replicating n-body algorithm:
//
//	-fig4a  energy vs (p, M) with constant-time contours and the
//	        minimum-energy line M0
//	-fig4b  feasible runs under an energy budget and a per-processor
//	        power budget
//	-fig4c  feasible runs under a time budget and a total power budget
//
// With no flags it renders all three. Budgets default to multiples of the
// optimum so every region is non-trivial, mirroring the paper's
// illustrative plots.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"perfscale/internal/machine"
	"perfscale/internal/opt"
	"perfscale/internal/report"
)

func main() {
	var (
		fa     = flag.Bool("fig4a", false, "Figure 4(a): energy and time contours")
		fb     = flag.Bool("fig4b", false, "Figure 4(b): energy / per-proc power budgets")
		fc     = flag.Bool("fig4c", false, "Figure 4(c): time / total power budgets")
		csv    = flag.Bool("csv", false, "emit the raw grid as CSV")
		n      = flag.Float64("n", machine.IllustrativeN, "number of bodies")
		f      = flag.Float64("f", 10, "flops per interaction")
		pLo    = flag.Float64("plo", 6, "smallest processor count (paper axis: 6)")
		pHi    = flag.Float64("phi", 100, "largest processor count (paper axis: 100)")
		pCnt   = flag.Int("pcount", 48, "grid resolution in p")
		mCnt   = flag.Int("mcount", 24, "grid resolution in M")
		eMul   = flag.Float64("emax", 1.5, "energy budget as multiple of E*")
		ppMul  = flag.Float64("ppmax", 1.3, "per-proc power budget as multiple of power at M0, p median")
		tMul   = flag.Float64("tmax", 3, "time budget as multiple of fastest run at M0")
		tpMul  = flag.Float64("tpmax", 60, "total power budget as multiple of per-proc power at M0")
		mmFlag = flag.Bool("matmul", false, "render the matmul execution region instead (technical-report companion)")
	)
	flag.Parse()
	all := !*fa && !*fb && !*fc

	if *mmFlag {
		renderMatMulRegion(*pCnt, *mCnt)
		return
	}

	pb := opt.NBody{M: machine.Illustrative(), N: *n, F: *f}
	grid := opt.NBodyRegionGrid(pb, *pLo, *pHi, *pCnt, *mCnt)

	fmt.Printf("n-body execution region: n=%s f=%g machine=%s\n",
		report.FormatFloat(*n), *f, pb.M.Name)
	fmt.Printf("M0 = %s words, E* = %s J, min-energy line spans p in [%s, %s]\n\n",
		report.FormatFloat(grid.M0), report.FormatFloat(grid.EStar),
		report.FormatFloat(pb.N/grid.M0), report.FormatFloat(pb.N*pb.N/(grid.M0*grid.M0)))

	if *csv {
		t := report.NewTable("", "p", "mem", "feasible", "energy", "time", "proc_power", "total_power", "on_m0_line")
		for _, c := range grid.Cells {
			t.AddRow(c.P, c.Mem, fmt.Sprintf("%v", c.Feasible), c.Energy, c.Time,
				c.ProcPower, c.TotalPower, fmt.Sprintf("%v", c.OnMinEnergyLine))
		}
		fmt.Print(t.CSV())
		return
	}

	budgets := opt.Budgets{
		EnergyMax:    *eMul * grid.EStar,
		ProcPowerMax: *ppMul * pb.ProcPower(grid.M0),
		TimeMax:      *tMul * pb.Time(pb.N*pb.N/(grid.M0*grid.M0), grid.M0),
		TotalPowMax:  *tpMul * pb.ProcPower(grid.M0),
	}

	if all || *fa {
		fmt.Println(renderRegion(grid, budgets, 'a'))
	}
	if all || *fb {
		fmt.Printf("budgets: Emax=%s J, per-proc Pmax=%s W\n",
			report.FormatFloat(budgets.EnergyMax), report.FormatFloat(budgets.ProcPowerMax))
		fmt.Println(renderRegion(grid, budgets, 'b'))
	}
	if all || *fc {
		fmt.Printf("budgets: Tmax=%s s, total Pmax=%s W\n",
			report.FormatFloat(budgets.TimeMax), report.FormatFloat(budgets.TotalPowMax))
		fmt.Println(renderRegion(grid, budgets, 'c'))
	}

	if all || *fa {
		printEnergyProfile(pb, grid)
	}
}

// renderRegion draws the (p, M) plane: '.' infeasible, other marks per
// sub-figure semantics.
func renderRegion(g opt.Fig4Grid, b opt.Budgets, sub byte) string {
	var bld strings.Builder
	switch sub {
	case 'a':
		bld.WriteString("Figure 4(a): G = min-energy line (M0); 1-9 = time decile (1 fastest); '.' = infeasible\n")
	case 'b':
		bld.WriteString("Figure 4(b): E = within energy budget, P = within per-proc power, B = both, '-' = neither; '.' = infeasible\n")
	case 'c':
		bld.WriteString("Figure 4(c): T = within time budget, W = within total power, B = both, '-' = neither; '.' = infeasible\n")
	}
	// Time deciles for sub-figure a.
	var tMin, tMax float64 = math.Inf(1), math.Inf(-1)
	for _, c := range g.Cells {
		if c.Feasible {
			tMin = math.Min(tMin, c.Time)
			tMax = math.Max(tMax, c.Time)
		}
	}
	nP := len(g.PValues)
	for mi := len(g.MemValues) - 1; mi >= 0; mi-- {
		fmt.Fprintf(&bld, "M=%10s | ", report.FormatFloat(g.MemValues[mi]))
		for pi := 0; pi < nP; pi++ {
			c := g.Cells[mi*nP+pi]
			if !c.Feasible {
				bld.WriteByte('.')
				continue
			}
			switch sub {
			case 'a':
				if c.OnMinEnergyLine {
					bld.WriteByte('G')
				} else {
					frac := (math.Log(c.Time) - math.Log(tMin)) / (math.Log(tMax) - math.Log(tMin))
					bld.WriteByte(byte('1' + int(frac*8.999)))
				}
			case 'b':
				f := b.Classify(c)
				bld.WriteByte(regionMark(f.WithinEnergy, f.WithinProcPower))
			case 'c':
				f := b.Classify(c)
				bld.WriteByte(regionMark(f.WithinTime, f.WithinTotalPow))
			}
		}
		bld.WriteByte('\n')
	}
	fmt.Fprintf(&bld, "%14s +-%s\n", "", strings.Repeat("-", nP))
	fmt.Fprintf(&bld, "%14s   p from %s to %s\n", "",
		report.FormatFloat(g.PValues[0]), report.FormatFloat(g.PValues[nP-1]))
	return bld.String()
}

func regionMark(first, second bool) byte {
	switch {
	case first && second:
		return 'B'
	case first:
		return 'E' // or T for sub-figure c; single-letter of the first budget
	case second:
		return 'P' // or W
	default:
		return '-'
	}
}

// printEnergyProfile prints E(M) across the sampled memory rows — the
// vertical profile of Figure 4(a)'s surface, minimized at M0.
func printEnergyProfile(pb opt.NBody, g opt.Fig4Grid) {
	t := report.NewTable("Energy vs memory (independent of p inside the region)",
		"M (words)", "E (J)", "E/E*")
	for _, mem := range g.MemValues {
		e := pb.Energy(mem)
		t.AddRow(mem, e, e/g.EStar)
	}
	fmt.Println(t.Render())
	var s report.Series
	s.Name = "E(M)"
	for _, mem := range g.MemValues {
		s.Add(mem, pb.Energy(mem))
	}
	fmt.Println(report.Chart("E(M): communication-dominated left of M0, memory-dominated right",
		60, 12, true, true, s))
}

// renderMatMulRegion draws the matmul counterpart of Figure 4(a): the
// wedge between the 2D limit M = n²/p and the 3D limit M = n²/p^(2/3),
// with the energy-optimal memory row marked.
func renderMatMulRegion(pCnt, mCnt int) {
	pb := opt.MatMul{M: machine.Illustrative(), N: 1 << 14}
	g := opt.MatMulRegionGrid(pb, 64, 1<<16, pCnt, mCnt)
	fmt.Printf("matmul execution region: n=%s machine=%s\n", report.FormatFloat(pb.N), pb.M.Name)
	fmt.Printf("M* = %s words, E(M*) = %s J\n\n", report.FormatFloat(g.MStar), report.FormatFloat(g.EStar))
	fmt.Println("G = min-energy memory row; 1-9 = time decile (1 fastest); '.' = infeasible")
	var tMin, tMax float64 = math.Inf(1), math.Inf(-1)
	for _, c := range g.Cells {
		if c.Feasible {
			tMin = math.Min(tMin, c.Time)
			tMax = math.Max(tMax, c.Time)
		}
	}
	nP := len(g.PValues)
	for mi := len(g.MemValues) - 1; mi >= 0; mi-- {
		fmt.Printf("M=%10s | ", report.FormatFloat(g.MemValues[mi]))
		for pi := 0; pi < nP; pi++ {
			c := g.Cells[mi*nP+pi]
			switch {
			case !c.Feasible:
				fmt.Print(".")
			case c.OnMinEnergyLine:
				fmt.Print("G")
			default:
				frac := (math.Log(c.Time) - math.Log(tMin)) / (math.Log(tMax) - math.Log(tMin))
				fmt.Printf("%c", byte('1'+int(frac*8.999)))
			}
		}
		fmt.Println()
	}
	fmt.Printf("%14s +-%s\n", "", strings.Repeat("-", nP))
	fmt.Printf("%14s   p from %s to %s (log scale)\n", "",
		report.FormatFloat(g.PValues[0]), report.FormatFloat(g.PValues[nP-1]))
}

var _ = os.Exit
