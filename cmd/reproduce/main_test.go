package main

import (
	"os"
	"os/exec"
	"regexp"
	"strings"
	"testing"
)

// The test binary re-executes itself with REPRODUCE_RUN_MAIN=1 so main()
// runs exactly as shipped (flag parsing included) without a go toolchain
// at test time.
func TestMain(m *testing.M) {
	if os.Getenv("REPRODUCE_RUN_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// elapsedLine matches the only nondeterministic output: the wall-clock
// footer. Tests normalize it before comparing runs.
var elapsedLine = regexp.MustCompile(`Generated in \d+\.\d+s`)

func runReproduce(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "REPRODUCE_RUN_MAIN=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("reproduce %v failed: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestReportCompleteAndClean(t *testing.T) {
	out := runReproduce(t)
	if strings.Contains(out, "**FAILED:**") {
		t.Fatalf("report contains failures:\n%s", out)
	}
	// Every DESIGN.md experiment must appear exactly once.
	for _, sec := range []string{
		"E1 ", "E2 ", "E3 ", "E4 ", "E5 ", "E6 ", "E7–E9 ", "E10 ",
		"E11 ", "E12 ", "E13 ", "E14 ", "E15 ", "E16 ", "E17 ", "E18 ",
		"E19 ", "E20 ", "E21 ",
	} {
		if n := strings.Count(out, "\n## "+sec); n != 1 {
			t.Errorf("section %q appears %d times, want 1", sec, n)
		}
	}
	if !elapsedLine.MatchString(out) {
		t.Error("report missing the elapsed-time footer")
	}
}

func TestReportDeterministic(t *testing.T) {
	// Everything is virtual time and seeded data, so two runs must agree
	// bit for bit once the wall-clock footer is normalized.
	a := elapsedLine.ReplaceAllString(runReproduce(t), "Generated in X")
	b := elapsedLine.ReplaceAllString(runReproduce(t), "Generated in X")
	if a != b {
		t.Error("two reproduce runs differ beyond the elapsed-time footer")
	}
}

func TestReportToFile(t *testing.T) {
	path := t.TempDir() + "/report.md"
	runReproduce(t, "-o", path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "# Reproduction report") {
		t.Errorf("file output missing the report header: %.80s", data)
	}
}
