// Command reproduce runs every experiment of DESIGN.md (E1–E21) in one
// pass and writes a Markdown report with the measured values: the
// single-command reproduction of the paper's evaluation.
//
// Usage:
//
//	reproduce              # report to stdout
//	reproduce -o report.md # report to a file
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"perfscale/internal/bounds"
	"perfscale/internal/casestudy"
	"perfscale/internal/core"
	"perfscale/internal/fft"
	"perfscale/internal/hetero"
	"perfscale/internal/lu"
	"perfscale/internal/machine"
	"perfscale/internal/matmul"
	"perfscale/internal/matrix"
	"perfscale/internal/nbody"
	"perfscale/internal/opt"
	"perfscale/internal/report"
	"perfscale/internal/seq"
	"perfscale/internal/sim"
	"perfscale/internal/strassen"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	w := io.Writer(os.Stdout)
	closeOut := func() error { return nil }
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// Closed explicitly below: a deferred Close would be skipped by the
		// os.Exit(1) on experiment failure and its error lost on success.
		closeOut = f.Close
		w = f
	}
	start := time.Now()
	r := &reporter{w: w}
	r.hdr()
	r.e1()
	r.e2()
	r.e3()
	r.e4()
	r.e5()
	r.e6()
	r.e789()
	r.e10()
	r.e11()
	r.e12()
	r.e13()
	r.e14()
	r.e15()
	r.e16()
	r.e17()
	r.e18()
	r.e19()
	r.e20()
	r.e21()
	r.p("\n---\nGenerated in %.1fs. All values deterministic (virtual time, seeded data).",
		time.Since(start).Seconds())
	if err := closeOut(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if r.werr != nil {
		fmt.Fprintln(os.Stderr, "reproduce: writing report:", r.werr)
		os.Exit(1)
	}
	if r.failed {
		os.Exit(1)
	}
}

type reporter struct {
	w      io.Writer
	failed bool
	// werr is the first report-write failure (ENOSPC, closed pipe, ...);
	// later writes are best-effort, and main turns it into exit 1 so a
	// truncated report can never pass for a clean run.
	werr error
}

func (r *reporter) write(format string, args ...any) {
	if _, err := fmt.Fprintf(r.w, format, args...); err != nil && r.werr == nil {
		r.werr = err
	}
}

func (r *reporter) section(title string) { r.write("\n## %s\n\n", title) }
func (r *reporter) p(format string, args ...any) {
	r.write(format+"\n", args...)
}
func (r *reporter) table(t *report.Table) { r.write("%s\n", t.Markdown()) }
func (r *reporter) fail(err error) {
	r.failed = true
	r.write("**FAILED:** %v\n", err)
}

func (r *reporter) hdr() {
	r.p("# Reproduction report — Perfect Strong Scaling Using No Additional Energy")
	r.p("")
	r.p("Every experiment of DESIGN.md, regenerated in one run. Model values come")
	r.p("from the closed forms; simulator values from executing the real algorithms")
	r.p("on the virtual-time runtime.")
}

func simCost(m machine.Params) sim.Cost {
	return sim.Cost{GammaT: m.GammaT, BetaT: m.BetaT, AlphaT: m.AlphaT, MaxMsgWords: int(m.MaxMsgWords)}
}

// bwCost is the bandwidth-dominated clock used by the toy-scale strong-
// scaling runs (the default preset's 1 µs latency would swamp the blocks).
var bwCost = sim.Cost{GammaT: 1e-9, BetaT: 4e-9, AlphaT: 1e-8}

func (r *reporter) e1() {
	r.section("E1 — Figure 3: limits of communication strong scaling")
	const n, mem = 65536, 1 << 24
	pts := bounds.Fig3Series(n, mem, 9)
	t := report.NewTable("", "p", "classical W·p", "strassen W·p")
	for _, pt := range pts {
		t.AddRow(pt.P, pt.ClassicalWP, pt.StrassenWP)
	}
	r.table(t)
	r.p("Classical saturation p = %s; Strassen saturation p = %s (paper: p = n³/M^1.5 and n^ω/M^(ω/2)).",
		report.FormatFloat(bounds.MatMulPMax(n, mem)),
		report.FormatFloat(bounds.FastMatMulPMax(n, mem, bounds.OmegaStrassen)))
}

func (r *reporter) e2() {
	r.section("E2 — Perfect strong scaling of 2.5D matmul")
	m := machine.SimDefault()
	model := core.MatMulStrongScalingSweep(m, 1<<15, 64, 8)
	eDev, tDev := core.PerfectScaling(model)
	r.p("Model (n=32768, pmin=64, c=1..8): energy deviation %.2g, time deviation %.2g — exact, as proved.", eDev, tDev)

	a := matrix.Random(96, 96, 1)
	b := matrix.Random(96, 96, 2)
	t := report.NewTable("Simulator, n=96, q=4 (fixed per-rank memory)",
		"c", "p", "sim time (s)", "speedup", "ideal", "max words sent")
	var t1 float64
	for _, c := range []int{1, 2, 4} {
		res, err := matmul.TwoPointFiveD(bwCost, 4, c, a, b)
		if err != nil {
			r.fail(err)
			return
		}
		if c == 1 {
			t1 = res.Sim.Time()
		}
		t.AddRow(c, 16*c, res.Sim.Time(), t1/res.Sim.Time(), c, res.Sim.MaxStats().WordsSent)
	}
	r.table(t)
}

func (r *reporter) e3() {
	r.section("E3 — Eq. 11: energy at the 3D limit")
	m := machine.SimDefault()
	rs := core.MatMul3DLimitSweep(m, 1<<14, []float64{64, 1024, 16384})
	t := report.NewTable("", "p", "E memory (J)", "E bandwidth (J)", "E total (J)")
	for _, res := range rs {
		t.AddRow(res.P, res.Energy.Memory, res.Energy.Bandwidth, res.TotalEnergy())
	}
	r.table(t)
	r.p("Memory energy falls with p while bandwidth energy rises — the paper's post-range tradeoff.")
}

func (r *reporter) e4() {
	r.section("E4 — Strassen (CAPS) energy and scaling")
	m := machine.SimDefault()
	model := core.FastMatMulStrongScalingSweep(m, 1<<15, 49, 6, bounds.OmegaStrassen)
	eDev, _ := core.PerfectScaling(model)
	r.p("Model (n=32768, pmin=49): energy deviation %.2g — perfect scaling holds for Strassen too.", eDev)
	a := matrix.Random(56, 56, 3)
	b := matrix.Random(56, 56, 4)
	t := report.NewTable("Simulator (CAPS), n=56", "k", "p", "sim time (s)", "total flops", "peak memory")
	for _, k := range []int{0, 1, 2} {
		res, err := strassen.CAPS(bwCost, k, a, b, 8)
		if err != nil {
			r.fail(err)
			return
		}
		p := int(math.Pow(7, float64(k)))
		t.AddRow(k, p, res.Sim.Time(), res.Sim.TotalStats().Flops, res.Sim.MaxStats().PeakMemWords)
	}
	r.table(t)
	r.p("Total flops sit below classical 2n³ = %s; per-rank memory falls ≈4x per level (FUM regime).",
		report.FormatFloat(2*56*56*56))
}

func (r *reporter) e5() {
	r.section("E5 — LU: bandwidth scales with replication, latency does not")
	a := matrix.RandomDiagDominant(32, 7)
	t := report.NewTable("Stacked LU, n=32, q=4", "c", "p", "avg words/rank", "latency-only critical path (α)")
	for _, c := range []int{1, 2, 4} {
		res, err := lu.Stacked(sim.Cost{}, 4, c, a)
		if err != nil {
			r.fail(err)
			return
		}
		lat, err := lu.Stacked(sim.Cost{AlphaT: 1}, 4, c, a)
		if err != nil {
			r.fail(err)
			return
		}
		t.AddRow(c, 16*c, res.Sim.TotalStats().WordsSent/float64(16*c), lat.Sim.Time())
	}
	r.table(t)
}

func (r *reporter) e6() {
	r.section("E6 — n-body perfect strong scaling")
	m := machine.SimDefault()
	model := core.NBodyStrongScalingSweep(m, 1e6, 100, 10, nbody.FlopsPerPair)
	eDev, _ := core.PerfectScaling(model)
	r.p("Model (n=1e6, pmin=100, c=1..10): energy deviation %.2g.", eDev)
	bodies := nbody.RandomBodies(256, 9)
	t := report.NewTable("Simulator, n=256, ring k=8 fixed", "c", "p", "sim time (s)", "speedup", "peak memory")
	var t1 float64
	for _, c := range []int{1, 2, 4} {
		res, err := nbody.Replicated(bwCost, 8*c, c, bodies)
		if err != nil {
			r.fail(err)
			return
		}
		if c == 1 {
			t1 = res.Sim.Time()
		}
		t.AddRow(c, 8*c, res.Sim.Time(), t1/res.Sim.Time(), res.Sim.MaxStats().PeakMemWords)
	}
	r.table(t)
}

func (r *reporter) e789() {
	r.section("E7–E9 — Figure 4: n-body execution regions")
	pb := opt.NBody{M: machine.Illustrative(), N: machine.IllustrativeN, F: 10}
	g := opt.NBodyRegionGrid(pb, 6, 100, 48, 24)
	budgets := opt.Budgets{
		EnergyMax:    1.5 * g.EStar,
		ProcPowerMax: 1.3 * pb.ProcPower(g.M0),
		TimeMax:      3 * pb.Time(pb.N*pb.N/(g.M0*g.M0), g.M0),
		TotalPowMax:  60 * pb.ProcPower(g.M0),
	}
	var inE, inPP, inT, inTP int
	for _, c := range g.Cells {
		f := budgets.Classify(c)
		if f.WithinEnergy {
			inE++
		}
		if f.WithinProcPower {
			inPP++
		}
		if f.WithinTime {
			inT++
		}
		if f.WithinTotalPow {
			inTP++
		}
	}
	t := report.NewTable("", "quantity", "value")
	t.AddRow("M0 (words)", g.M0)
	t.AddRow("E* (J)", g.EStar)
	t.AddRow("min-energy line p-range", fmt.Sprintf("[%s, %s]",
		report.FormatFloat(pb.N/g.M0), report.FormatFloat(pb.N*pb.N/(g.M0*g.M0))))
	t.AddRow("feasible cells", g.CountFeasible())
	t.AddRow("within 1.5·E*", inE)
	t.AddRow("within 1.3x per-proc power", inPP)
	t.AddRow("within 3x min time", inT)
	t.AddRow("within 60x total power", inTP)
	r.table(t)
	r.p("Run `go run ./cmd/nbodyregion` for the ASCII renderings of the three sub-figures.")
}

func (r *reporter) e10() {
	r.section("E10 — Section V closed forms (n-body)")
	pb := opt.NBody{M: machine.Illustrative(), N: machine.IllustrativeN, F: 10}
	t := report.NewTable("", "quantity", "value")
	t.AddRow("M0 closed form", pb.OptimalMemory())
	t.AddRow("M0 numeric", pb.NumericOptimalMemory())
	t.AddRow("E* (Eq. 18)", pb.MinEnergy())
	cfg, pw := pb.MinAvgPowerConfig()
	t.AddRow("min avg power config", fmt.Sprintf("p=%s M=%s (1D limit)",
		report.FormatFloat(cfg.P), report.FormatFloat(cfg.Mem)))
	t.AddRow("min avg power (W)", pw)
	r.table(t)
}

func (r *reporter) e11() {
	r.section("E11 — Table I: case-study parameters")
	t := report.NewTable("", "parameter", "derived", "printed")
	for _, row := range casestudy.Table1() {
		t.AddRow(row.Name, row.Derived, row.Printed)
	}
	r.table(t)
}

func (r *reporter) e12() {
	r.section("E12 — Figure 6: scaling γe, βe, δe independently")
	t := report.NewTable("GFLOPS/W of 2.5D matmul (n=35000, p=2)",
		"generation", "scale gamma_e", "scale beta_e", "scale delta_e")
	pts := casestudy.Fig6(8)
	byGen := map[int]map[machine.EnergyField]float64{}
	for _, p := range pts {
		if byGen[p.Generation] == nil {
			byGen[p.Generation] = map[machine.EnergyField]float64{}
		}
		byGen[p.Generation][p.Field] = p.Efficiency
	}
	for g := 0; g <= 8; g += 2 {
		row := byGen[g]
		t.AddRow(g, row[machine.FieldGammaE], row[machine.FieldBetaE], row[machine.FieldDeltaE])
	}
	r.table(t)
	r.p("βe scaling is negligible; γe-only scaling is capped at %s GFLOPS/W — the paper's two observations.",
		report.FormatFloat(casestudy.SaturationEfficiency(machine.FieldGammaE)))
}

func (r *reporter) e13() {
	r.section("E13 — Figure 7: scaling the three parameters together")
	t := report.NewTable("", "generation", "multiplier", "GFLOPS/W")
	for _, p := range casestudy.Fig7(6) {
		t.AddRow(p.Generation, p.Multiplier, p.Efficiency)
	}
	r.table(t)
	r.p("75 GFLOPS/W reached at generation %d (paper: ~5).", casestudy.GenerationsToTarget(75, 10))
}

func (r *reporter) e14() {
	r.section("E14 — Table II: device survey")
	t := report.NewTable("", "device", "peak GFLOP/s", "gamma_e (J/flop)", "GFLOPS/W")
	for _, row := range casestudy.Table2() {
		t.AddRow(row.Device.Name, row.PeakGFLOPS, row.GammaE, row.GFLOPSPerW)
	}
	r.table(t)
	r.p("All derived columns within 1%% of the printed table; no device reaches 10 GFLOPS/W.")
}

func (r *reporter) e15() {
	r.section("E15 — FFT: naive vs tree all-to-all")
	m := machine.SimDefault()
	x := fft.RandomSignal(1024, 3)
	t := report.NewTable("Distributed FFT, n=1024, p=16", "exchange", "messages/rank", "words/rank", "sim time (s)")
	for _, tree := range []bool{false, true} {
		res, err := fft.Distributed(simCost(m), 16, x, tree)
		if err != nil {
			r.fail(err)
			return
		}
		name := "naive"
		if tree {
			name = "tree (Bruck)"
		}
		s := res.Sim.MaxStats()
		t.AddRow(name, s.MsgsSent, s.WordsSent, res.Sim.Time())
	}
	r.table(t)
	growth := core.FFT(m, 1<<24, 4096, true).TotalEnergy() / core.FFT(m, 1<<24, 64, true).TotalEnergy()
	r.p("Model energy grows %.2fx from p=64 to p=4096 at fixed n — no perfect-scaling region, as the paper states.", growth)
}

func (r *reporter) e16() {
	r.section("E16 — Two-level machine model (Eqs. 12 and 17)")
	tl := machine.JaketownTwoLevel()
	tl.EpsilonE = 1e-3
	mm := core.TwoLevelMatMul(tl, 8192, 4, 8)
	nb := core.TwoLevelNBody(tl, 1e6, 4, 8, 16)
	der := core.TwoLevelNBodyDerived(tl, 1e6, 4, 8, 16)
	t := report.NewTable("", "quantity", "value")
	t.AddRow("matmul T (s), pn=4, pl=8", mm.Time)
	t.AddRow("matmul E (J)", mm.Energy)
	t.AddRow("n-body E printed Eq. 17 (J)", nb.Energy)
	t.AddRow("n-body E derived (J)", der.Energy)
	t.AddRow("printed vs derived gap", math.Abs(nb.Energy-der.Energy)/der.Energy)
	r.table(t)
}

func (r *reporter) e17() {
	r.section("E17 — Sequential model (Figure 1(a))")
	const n = 48
	a := matrix.Random(n, n, 1)
	b := matrix.Random(n, n, 2)
	t := report.NewTable("Out-of-core matmul, n=48", "fast memory", "W measured", "Eq. 3 bound", "ratio")
	for _, bs := range []int{4, 8, 16} {
		mc, err := seq.New(3*bs*bs, 0)
		if err != nil {
			r.fail(err)
			return
		}
		if _, err := seq.BlockedMatMul(mc, a, b, bs); err != nil {
			r.fail(err)
			return
		}
		bound := bounds.SequentialWords(2*float64(n*n)*float64(n), float64(3*bs*bs), 3*float64(n*n))
		t.AddRow(3*bs*bs, mc.Stats().Words, bound, mc.Stats().Words/bound)
	}
	r.table(t)
}

func (r *reporter) e18() {
	r.section("E18 — BLAS2 (GEMV): the I+O-dominated regime")
	const n, q = 64, 4
	a := matrix.Random(n, n, 63)
	x := matrix.Random(n, 1, 64).Data
	res, err := matmul.Gemv(sim.Cost{}, q, a, x)
	if err != nil {
		r.fail(err)
		return
	}
	m := machine.SimDefault()
	t := report.NewTable("", "quantity", "value")
	t.AddRow("per-rank words / vector slice", res.Sim.MaxStats().WordsSent/float64(n/q))
	t.AddRow("flop-vs-I/O headroom (n=1e6, p=1024)", bounds.GEMVNoScalingRatio(1e6, 1024))
	e1 := core.Eval(m, bounds.GEMV(1<<14, 16, m.MaxMsgWords), 16, 1<<24).Energy.Bandwidth
	e2 := core.Eval(m, bounds.GEMV(1<<14, 256, m.MaxMsgWords), 256, 1<<20).Energy.Bandwidth
	t.AddRow("bandwidth energy growth, p x16", e2/e1)
	r.table(t)
	r.p("Communication is I/O-sized at any memory: no perfect-scaling region for BLAS2, as §III states.")
}

func (r *reporter) e19() {
	r.section("E19 — Cholesky under the same bounds")
	const n, q = 24, 4
	spd := matrix.RandomSPD(n, 5)
	chol, err := lu.Cholesky(sim.Cost{}, q, spd)
	if err != nil {
		r.fail(err)
		return
	}
	dd := matrix.RandomDiagDominant(n, 5)
	lures, err := lu.TwoD(sim.Cost{}, q, dd)
	if err != nil {
		r.fail(err)
		return
	}
	resid := matrix.Mul(chol.L, chol.U).MaxAbsDiff(spd)
	t := report.NewTable("", "quantity", "value")
	t.AddRow("‖L·Lᵀ − A‖max", resid)
	t.AddRow("Cholesky/LU total flops", chol.Sim.TotalStats().Flops/lures.Sim.TotalStats().Flops)
	r.table(t)
}

func (r *reporter) e20() {
	r.section("E20 — Heterogeneous ensembles (the paper's citation [7])")
	devices := machine.TableIIDevices()
	procs := []hetero.Proc{
		hetero.FromDevice(devices[8], 1e-10, 1e-7, 1e-10, 0, 1e-9, 0.5, 1<<30, 1<<20), // GTX590
		hetero.FromDevice(devices[0], 1e-10, 1e-7, 1e-10, 0, 1e-9, 0.5, 1<<30, 1<<20), // Sandy Bridge
		hetero.FromDevice(devices[9], 1e-10, 1e-7, 1e-10, 0, 1e-9, 0.5, 1<<30, 1<<20), // A9 2GHz
	}
	part, err := hetero.PartitionFlops(procs, 1e13)
	if err != nil {
		r.fail(err)
		return
	}
	t := report.NewTable("Equal-finish partition of 1e13 flops", "device", "share", "of total")
	for i, p := range procs {
		t.AddRow(p.Name, part.Shares[i], fmt.Sprintf("%.2f%%", 100*part.Shares[i]/1e13))
	}
	r.table(t)
	idx, best, err := hetero.BestSubset(procs, 1e13, 0)
	if err != nil {
		r.fail(err)
		return
	}
	r.p("makespan %.3f s, energy %.1f J; energy-optimal subset keeps %d device(s) at %.1f J.",
		part.Time, part.Energy, len(idx), best.Energy)
}

func (r *reporter) e21() {
	r.section("E21 — Model accuracy against the simulator")
	m := machine.Params{
		GammaT: 1e-9, BetaT: 4e-9, AlphaT: 1e-8,
		GammaE: 1e-9, BetaE: 4e-9, AlphaE: 1e-8, DeltaE: 1e-11, EpsilonE: 1e-4,
		MemWords: 1 << 30, MaxMsgWords: 1 << 24,
	}
	cost := sim.Cost{GammaT: m.GammaT, BetaT: m.BetaT, AlphaT: m.AlphaT}
	t := report.NewTable("2.5D matmul: simulated T over model T", "n", "q", "c", "ratio")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, n := range []int{48, 96, 192} {
		for _, cfg := range []struct{ q, c int }{{4, 1}, {4, 2}, {4, 4}} {
			a := matrix.Random(n, n, int64(n))
			b := matrix.Random(n, n, int64(n)+1)
			res, err := matmul.TwoPointFiveD(cost, cfg.q, cfg.c, a, b)
			if err != nil {
				r.fail(err)
				return
			}
			p := float64(cfg.q * cfg.q * cfg.c)
			model := core.MatMulClassical(m, float64(n), p, res.Sim.MaxStats().PeakMemWords)
			ratio := res.Sim.Time() / model.TotalTime()
			lo, hi = math.Min(lo, ratio), math.Max(hi, ratio)
			t.AddRow(n, cfg.q, cfg.c, ratio)
		}
	}
	r.table(t)
	r.p("Ratio band [%.2f, %.2f] across a 4x range of n and p = 16..64: the linear model tracks the simulator up to a stable constant — the accuracy bar Section VI sets.", lo, hi)
}
