package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// The test binary re-executes itself with SCALING_RUN_MAIN=1 so main()
// runs exactly as shipped, flag parsing and exit codes included.
func TestMain(m *testing.M) {
	if os.Getenv("SCALING_RUN_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

func runScaling(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "SCALING_RUN_MAIN=1")
	out, err := cmd.CombinedOutput()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("scaling %v did not run: %v\n%s", args, err, out)
		}
		code = ee.ExitCode()
	}
	return string(out), code
}

func TestOutputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "weak.txt")
	out, code := runScaling(t, "-weak", "-o", path)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "weak scaling") {
		t.Fatalf("report misses weak-scaling section:\n%s", data)
	}
}

func TestCurvesMode(t *testing.T) {
	out, code := runScaling(t, "-curves", "-runtime", "event")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"event runtime", "matmul-2.5d", "fft-tree", "efficiency"} {
		if !strings.Contains(out, want) {
			t.Fatalf("curves output misses %q:\n%s", want, out)
		}
	}
}

func TestBadUsageExitsTwo(t *testing.T) {
	if out, code := runScaling(t, "-machine", "nope"); code != 2 {
		t.Fatalf("unknown machine: exit %d, want 2:\n%s", code, out)
	}
	if out, code := runScaling(t, "-curves", "-runtime", "nope"); code != 2 {
		t.Fatalf("unknown runtime: exit %d, want 2:\n%s", code, out)
	}
}

func TestWriteFailureExitsNonZero(t *testing.T) {
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full not available")
	}
	out, code := runScaling(t, "-weak", "-o", "/dev/full")
	if code == 0 {
		t.Fatalf("write to /dev/full succeeded:\n%s", out)
	}
	if !strings.Contains(out, "scaling:") {
		t.Fatalf("no write-failure diagnostic:\n%s", out)
	}
}
