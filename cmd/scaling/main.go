// Command scaling regenerates the strong-scaling artifacts:
//
//	-fig3      Figure 3 — limits of communication strong scaling
//	           (classical vs Strassen-like, W·p against p)
//	-perfect   Experiment E2 — perfect strong scaling of 2.5D matmul:
//	           model sweep plus real simulator runs
//	-strassen  Experiment E4 — Strassen/CAPS model sweep plus simulator runs
//	-threeD    Experiment E3 — energy along the 3D limit (Eq. 11)
//	-weak      E22 — weak scaling at constant energy per flop (closed form)
//	-rect      tight rectangular (m×k×n) matmul bounds — aspect-ratio regime
//	           map plus live rectangular SUMMA runs against the bound
//	-curves    measured efficiency-vs-p curves (strong + weak families) on
//	           the live simulator, with closed-form predictions and the
//	           predicted perfect-scaling plateau end per row
//
// With no flags it runs everything except -curves. Output goes to stdout
// or the -o file; write failures exit non-zero.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"perfscale/internal/analytics"
	"perfscale/internal/bounds"
	"perfscale/internal/core"
	"perfscale/internal/machine"
	"perfscale/internal/matmul"
	"perfscale/internal/matrix"
	"perfscale/internal/report"
	"perfscale/internal/sim"
	"perfscale/internal/strassen"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		fig3    = flag.Bool("fig3", false, "Figure 3: strong-scaling limits")
		perfect = flag.Bool("perfect", false, "E2: 2.5D matmul perfect scaling")
		strass  = flag.Bool("strassen", false, "E4: Strassen energy scaling")
		threeD  = flag.Bool("threeD", false, "E3: 3D-limit energy tradeoff")
		weak    = flag.Bool("weak", false, "E22: weak scaling at constant energy per flop")
		rect    = flag.Bool("rect", false, "rectangular matmul bounds: regime map plus live SUMMA runs vs bound")
		curves  = flag.Bool("curves", false, "measured efficiency-vs-p curves (strong + weak)")
		runtime = flag.String("runtime", "goroutine", "simulator backend for -curves: goroutine or event")
		csv     = flag.Bool("csv", false, "emit CSV instead of text tables")
		mach    = flag.String("machine", "simdefault", "machine preset name or .json parameter file")
		outPath = flag.String("o", "", "output file (default stdout)")
		fig3N   = flag.Float64("fig3-n", 65536, "Figure 3 matrix dimension")
		fig3Mem = flag.Float64("fig3-mem", 1<<24, "Figure 3 memory per processor (words)")
		fig3Pts = flag.Int("fig3-points", 25, "Figure 3 sample count")
	)
	flag.Parse()
	all := !*fig3 && !*perfect && !*strass && !*threeD && !*weak && !*rect && !*curves

	m, err := machine.Resolve(*mach)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *curves && *runtime != "goroutine" && *runtime != "event" {
		fmt.Fprintf(os.Stderr, "scaling: unknown -runtime %q\n", *runtime)
		return 2
	}

	w, closeOut, err := report.OpenOutput(*outPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scaling:", err)
		return 1
	}
	emit := func(t *report.Table) {
		if *csv {
			w.Printf("%s", t.CSV())
		} else {
			w.Println(t.Render())
		}
	}

	code := 0
	if all || *fig3 {
		runFig3(w, emit, *fig3N, *fig3Mem, *fig3Pts, *csv)
	}
	if all || *perfect {
		runPerfect(emit, m)
	}
	if all || *strass {
		runStrassen(emit, m)
	}
	if all || *threeD {
		run3D(emit, m)
	}
	if all || *weak {
		runWeak(emit, m)
	}
	if all || *rect {
		if err := runRect(emit, m); err != nil {
			fmt.Fprintln(os.Stderr, "scaling:", err)
			code = 1
		}
	}
	if *curves {
		if err := runCurves(emit, m, *runtime); err != nil {
			fmt.Fprintln(os.Stderr, "scaling:", err)
			code = 1
		}
	}
	if err := w.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "scaling: writing report:", err)
		code = 1
	}
	if err := closeOut(); err != nil {
		fmt.Fprintln(os.Stderr, "scaling: closing output:", err)
		code = 1
	}
	return code
}

// runCurves measures the quick strong+weak efficiency-vs-p curves on the
// live simulator — the same sweep the CI scaling gate runs.
func runCurves(emit func(*report.Table), m machine.Params, runtime string) error {
	var rt sim.Runtime
	switch runtime {
	case "goroutine":
		rt = sim.RuntimeGoroutine
	case "event":
		rt = sim.RuntimeEvent
	default:
		return fmt.Errorf("unknown -runtime %q", runtime)
	}
	rows, err := analytics.QuickCurves(m, rt)
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("Efficiency-vs-p curves (%s runtime): measured vs closed-form prediction", runtime),
		"family", "algorithm", "n", "p", "c", "sim T (s)", "E (J)", "efficiency", "predicted", "E ratio", "plateau p*", "binding bound")
	for _, r := range rows {
		t.AddRow(r.Family, r.Algorithm, r.N, r.P, r.C, r.SimT, r.EnergyJ, r.Efficiency, r.Predicted, r.EnergyRatio,
			r.PlateauP, r.PlateauBound)
	}
	emit(t)
	return nil
}

// runRect reports the tight rectangular (m×k×n) lower bounds of Al Daas
// et al.: first the closed-form aspect-ratio regime map for a few shapes,
// then live rectangular SUMMA runs whose busiest-rank traffic is compared
// against the bound that applies at each grid.
func runRect(emit func(*report.Table), m machine.Params) error {
	t := report.NewTable("Rectangular matmul bounds: aspect-ratio regimes (Al Daas et al.)",
		"m", "k", "n", "one-large until p", "two-large until p", "regime at p=64", "bound W at p=64")
	for _, s := range [][3]float64{
		{4096, 64, 64},
		{4096, 4, 4096},
		{256, 1024, 64},
		{512, 512, 512},
	} {
		p1, p2 := bounds.RectRegimeBoundaries(s[0], s[1], s[2])
		wb, regime := bounds.RectMemIndepWords(s[0], s[1], s[2], 64)
		t.AddRow(s[0], s[1], s[2], report.FormatFloat(p1), report.FormatFloat(p2), regime.String(), wb)
	}
	emit(t)

	// Live runs: fixed rectangular shape, growing grid; the measured
	// busiest-rank words moved must sit above the applicable bound, and the
	// regime column names which form of it binds.
	const mDim, kDim, n, panel = 48, 16, 32, 4
	cost := sim.Cost{GammaT: m.GammaT, BetaT: m.BetaT, AlphaT: m.AlphaT, MaxMsgWords: int(m.MaxMsgWords)}
	a := matrix.Random(mDim, kDim, 51)
	b := matrix.Random(kDim, n, 52)
	t2 := report.NewTable(fmt.Sprintf("Rectangular SUMMA, m=%d k=%d n=%d: measured vs lower bound", mDim, kDim, n),
		"grid", "p", "sim T (s)", "max W moved", "bound W", "regime")
	for _, g := range [][2]int{{1, 2}, {2, 2}, {2, 4}, {4, 4}} {
		pr, pc := g[0], g[1]
		res, err := matmul.SUMMARect(cost, pr, pc, panel, a, b)
		if err != nil {
			return fmt.Errorf("rect summa %dx%d: %w", pr, pc, err)
		}
		var moved float64
		for _, s := range res.Sim.PerRank {
			moved = math.Max(moved, s.WordsSent+s.WordsRecv)
		}
		wb, regime := bounds.RectMemIndepWords(float64(mDim), float64(kDim), float64(n), float64(pr*pc))
		t2.AddRow(fmt.Sprintf("%dx%d", pr, pc), pr*pc, res.Sim.Time(), moved, wb, regime.String())
	}
	emit(t2)
	return nil
}

func runWeak(emit func(*report.Table), m machine.Params) {
	mem := float64(1 << 22)
	ps := []float64{16, 64, 256, 1024, 4096}
	pts := core.MatMulWeakScalingSweep(m, mem, ps)
	t := report.NewTable("E22: memory-constrained weak scaling, matmul (M fixed, n = sqrt(M·p))",
		"p", "n", "T (s)", "E (J)", "E per flop (J)")
	for _, pt := range pts {
		n := mathSqrt(mem * pt.P)
		t.AddRow(pt.P, n, pt.Time, pt.Energy, pt.Energy/(n*n*n))
	}
	emit(t)
}

func mathSqrt(x float64) float64 { return math.Sqrt(x) }

func runFig3(w *report.ErrWriter, emit func(*report.Table), n, mem float64, points int, csv bool) {
	pts := bounds.Fig3Series(n, mem, points)
	t := report.NewTable(fmt.Sprintf("Figure 3: W·p vs p (n=%s, M=%s)",
		report.FormatFloat(n), report.FormatFloat(mem)),
		"p", "classical W·p", "strassen W·p")
	var cs, ss report.Series
	cs.Name, ss.Name = "classical", "strassen-like"
	for _, pt := range pts {
		t.AddRow(pt.P, pt.ClassicalWP, pt.StrassenWP)
		cs.Add(pt.P, pt.ClassicalWP)
		ss.Add(pt.P, pt.StrassenWP)
	}
	emit(t)
	if !csv {
		w.Println(report.Chart("Figure 3 (log-log); flat region = perfect strong scaling",
			64, 16, true, true, cs, ss))
		cl, st := bounds.Fig3Plateaus(n, mem)
		w.Printf("classical: perfect scaling ends at p = %s; past it the %s bound binds\n",
			report.FormatFloat(cl.PEnd), cl.IndependentBound)
		w.Printf("strassen:  perfect scaling ends at p = %s; past it the %s bound binds\n\n",
			report.FormatFloat(st.PEnd), st.IndependentBound)
	}
}

func runPerfect(emit func(*report.Table), m machine.Params) {
	// Model sweep at scale.
	model := core.MatMulStrongScalingSweep(m, 1<<15, 64, 8)
	t := report.NewTable("E2 model: 2.5D matmul, n=32768, pmin=64, M fixed",
		"c", "p", "T (s)", "E (J)", "T·c/T1", "E/E1")
	for _, pt := range model {
		t.AddRow(pt.C, pt.P, pt.Time, pt.Energy,
			pt.Time*pt.C/model[0].Time, pt.Energy/model[0].Energy)
	}
	emit(t)

	// Simulator runs: fixed n and per-rank block size, p = 16, 32, 64.
	cost := sim.Cost{GammaT: m.GammaT, BetaT: m.BetaT, AlphaT: m.AlphaT, MaxMsgWords: int(m.MaxMsgWords)}
	const n = 96
	a := matrix.Random(n, n, 1)
	b := matrix.Random(n, n, 2)
	t2 := report.NewTable("E2 simulator: 2.5D matmul, n=96, q=4, c=1,2,4",
		"c", "p", "sim T (s)", "max W sent", "speedup", "ideal")
	var t1 float64
	for _, c := range []int{1, 2, 4} {
		res, err := matmul.TwoPointFiveD(cost, 4, c, a, b)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if c == 1 {
			t1 = res.Sim.Time()
		}
		t2.AddRow(c, 16*c, res.Sim.Time(), res.Sim.MaxStats().WordsSent, t1/res.Sim.Time(), c)
	}
	emit(t2)
}

func runStrassen(emit func(*report.Table), m machine.Params) {
	model := core.FastMatMulStrongScalingSweep(m, 1<<15, 49, 6, bounds.OmegaStrassen)
	t := report.NewTable("E4 model: Strassen (CAPS), n=32768, pmin=49, M fixed",
		"c", "p", "T (s)", "E (J)", "E/E1")
	for _, pt := range model {
		t.AddRow(pt.C, pt.P, pt.Time, pt.Energy, pt.Energy/model[0].Energy)
	}
	emit(t)

	cost := sim.Cost{GammaT: m.GammaT, BetaT: m.BetaT, AlphaT: m.AlphaT, MaxMsgWords: int(m.MaxMsgWords)}
	const n = 56
	a := matrix.Random(n, n, 3)
	b := matrix.Random(n, n, 4)
	t2 := report.NewTable("E4 simulator: CAPS, n=56", "k", "p", "sim T (s)", "total flops", "max W sent")
	for _, k := range []int{0, 1, 2} {
		res, err := strassen.CAPS(cost, k, a, b, 8)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		p := 1
		for i := 0; i < k; i++ {
			p *= 7
		}
		t2.AddRow(k, p, res.Sim.Time(), res.Sim.TotalStats().Flops, res.Sim.MaxStats().WordsSent)
	}
	emit(t2)
}

func run3D(emit func(*report.Table), m machine.Params) {
	n := float64(1 << 14)
	ps := []float64{64, 256, 1024, 4096, 16384}
	rs := core.MatMul3DLimitSweep(m, n, ps)
	t := report.NewTable("E3: energy at the 3D limit M = n²/p^(2/3), n=16384",
		"p", "E memory (J)", "E bandwidth (J)", "E total (J)", "Eq.11 check")
	for _, r := range rs {
		t.AddRow(r.P, r.Energy.Memory, r.Energy.Bandwidth, r.TotalEnergy(),
			core.MatMul3DEnergyClosedForm(m, n, r.P))
	}
	emit(t)
}
