// Command campaign drives the chaos-campaign engine: it enumerates the
// fault space of a clean run, sweeps structured and seeded-random fault
// plans through the resilience stack, delta-debugs every invariant
// violation to a minimal reproducer, and checkpoints its progress so an
// interrupted campaign resumes exactly where it stopped.
//
// Usage:
//
//	campaign -sweep                          # new campaign, checkpoint to -state
//	campaign -sweep -budget 200              # stop (resumable) after 200 target runs
//	campaign -resume                         # continue the campaign in -state
//	campaign -replay artifacts/repro-000.json  # re-run a reproducer on both backends
//	campaign -shrink artifacts/repro-000.json  # re-minimize with a fresh budget
//
// Target knobs (-n, -q, -machine, -drop, -detector-rtos, -detector-misses,
// -max-attempts, -max-rto-factor, -seed, -runtime) configure a -sweep;
// -resume takes its configuration from the checkpoint and ignores them.
//
// The exit status is 0 when the campaign completes or pauses at its
// budget (state saved either way), 1 on an IO failure or a reproducer
// that fails to replay, 2 on bad flags, 130 when interrupted by
// SIGINT/SIGTERM — in which case the checkpoint covers every completed
// cell and -resume continues with a bit-identical corpus.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"perfscale/internal/campaign"
)

func main() {
	var (
		sweep        = flag.Bool("sweep", false, "run a new campaign")
		resume       = flag.Bool("resume", false, "resume the campaign checkpointed in -state")
		replay       = flag.String("replay", "", "replay a reproducer artifact on both backends and exit")
		shrink       = flag.String("shrink", "", "re-minimize a reproducer artifact in place with a fresh -shrink-budget")
		statePath    = flag.String("state", "campaign.state.json", "campaign checkpoint file")
		artDir       = flag.String("artifacts", "campaign-artifacts", "directory reproducer artifacts are written to")
		budget       = flag.Int("budget", 0, "max target runs for -sweep/-resume, checked between cells (0 = unlimited)")
		shrinkBudget = flag.Int("shrink-budget", 0, "max target runs per minimization (0 = default)")

		n            = flag.Int("n", 32, "matrix dimension of the target")
		q            = flag.Int("q", 4, "grid side of the target (p = q*q ranks)")
		mach         = flag.String("machine", "simdefault", "machine preset pricing the target")
		seed         = flag.Uint64("seed", 1, "campaign seed (cells, plan seeds, crash victims)")
		runtime      = flag.String("runtime", "event", "sweep backend: event or goroutine")
		drop         = flag.Float64("drop", 0.25, "background and per-link drop probability")
		randomPlans  = flag.Int("random-plans", 6, "number of seeded compound cells")
		maxAttempts  = flag.Int("max-attempts", 0, "ARQ retransmission budget (0 = endpoint default)")
		maxRTOFactor = flag.Float64("max-rto-factor", 0, "ARQ backoff ceiling in RTOs (0 = endpoint default)")
		detRTOs      = flag.Float64("detector-rtos", 0, "failure-detector interval in RTOs (0 = endpoint default)")
		detMisses    = flag.Int("detector-misses", 0, "tolerated silent detector windows (0 = endpoint default)")
	)
	flag.Parse()

	modes := 0
	for _, on := range []bool{*sweep, *resume, *replay != "", *shrink != ""} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "campaign: pick exactly one of -sweep, -resume, -replay, -shrink")
		os.Exit(2)
	}

	// A first SIGINT/SIGTERM cancels the campaign at the next deterministic
	// checkpoint; a second one falls back to the default handler.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *replay != "" {
		r, err := campaign.LoadFile(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, "campaign:", err)
			os.Exit(1)
		}
		fmt.Printf("replaying %s: %s cell %d, %s violates %s, %d → %d fault coordinates\n",
			*replay, r.Kind, r.Cell, r.Class, r.Invariant, r.DiscoveredCoords, r.MinimizedCoords)
		if err := r.Verify(ctx); err != nil {
			if ctx.Err() != nil {
				fmt.Fprintln(os.Stderr, "campaign: interrupted")
				os.Exit(130)
			}
			fmt.Fprintln(os.Stderr, "campaign: DOES NOT REPRODUCE:", err)
			os.Exit(1)
		}
		fmt.Println("reproduces bitwise on both backends")
		return
	}

	if *shrink != "" {
		r, err := campaign.LoadFile(*shrink)
		if err != nil {
			fmt.Fprintln(os.Stderr, "campaign:", err)
			os.Exit(1)
		}
		before := r.MinimizedCoords
		runs, err := r.Reshrink(ctx, *runtime, *shrinkBudget)
		if err != nil {
			if ctx.Err() != nil {
				fmt.Fprintln(os.Stderr, "campaign: interrupted")
				os.Exit(130)
			}
			fmt.Fprintln(os.Stderr, "campaign:", err)
			os.Exit(1)
		}
		data, err := r.Encode()
		if err != nil {
			fmt.Fprintln(os.Stderr, "campaign:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*shrink, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "campaign:", err)
			os.Exit(1)
		}
		fmt.Printf("re-minimized %s: %d → %d fault coordinates in %d runs\n", *shrink, before, r.MinimizedCoords, runs)
		return
	}

	var eng *campaign.Engine
	var err error
	if *resume {
		data, rerr := os.ReadFile(*statePath)
		if rerr != nil {
			fmt.Fprintln(os.Stderr, "campaign:", rerr)
			os.Exit(1)
		}
		var st campaign.State
		if jerr := json.Unmarshal(data, &st); jerr != nil {
			fmt.Fprintf(os.Stderr, "campaign: bad checkpoint %s: %v\n", *statePath, jerr)
			os.Exit(1)
		}
		eng, err = campaign.Resume(&st)
	} else {
		cfg := campaign.Config{
			Target: campaign.Target{
				N: *n, Q: *q, Machine: *mach,
				MaxAttempts: *maxAttempts, MaxRTOFactor: *maxRTOFactor,
				DetectorRTOs: *detRTOs, DetectorMisses: *detMisses,
			},
			Runtime: *runtime, Seed: *seed, RandomPlans: *randomPlans,
			DropProb: *drop, ShrinkBudget: *shrinkBudget,
		}
		eng, err = campaign.New(cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(2)
	}
	if err := os.MkdirAll(*artDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}

	st, err := eng.Run(campaign.RunOpts{
		Context: ctx,
		Budget:  *budget,
		Log: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
		Save: func(st *campaign.State) error { return save(st, *statePath, *artDir) },
	})
	switch {
	case err == nil:
		fmt.Printf("campaign done: %d/%d cells, %d runs, %d findings, state in %s\n",
			st.NextCell, len(st.Cells), st.RunsUsed, len(st.Findings), *statePath)
	case errors.Is(err, campaign.ErrBudget):
		fmt.Printf("campaign paused at budget: %d/%d cells, %d runs, %d findings; -resume continues\n",
			st.NextCell, len(st.Cells), st.RunsUsed, len(st.Findings))
	case errors.Is(err, campaign.ErrInterrupted):
		fmt.Fprintf(os.Stderr, "campaign: interrupted at cell %d/%d; state saved to %s, -resume continues\n",
			st.NextCell, len(st.Cells), *statePath)
		os.Exit(130)
	default:
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
}

// save checkpoints the state and every minimized reproducer. The state file
// is written via a same-directory rename so a kill mid-write never leaves a
// torn checkpoint behind.
func save(st *campaign.State, statePath, artDir string) error {
	for _, f := range st.Findings {
		if f.Repro == nil {
			continue
		}
		data, err := f.Repro.Encode()
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(artDir, f.Artifact), data, 0o644); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	tmp := statePath + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, statePath)
}
