package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"perfscale/internal/campaign"
)

// The test binary re-executes itself with CAMPAIGN_RUN_MAIN=1 so main()
// runs exactly as shipped, flag parsing, signal handling and exit codes
// included.
func TestMain(m *testing.M) {
	if os.Getenv("CAMPAIGN_RUN_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

func runCampaign(t *testing.T, dir string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CAMPAIGN_RUN_MAIN=1")
	out, err := cmd.CombinedOutput()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("campaign %v did not run: %v\n%s", args, err, out)
		}
		code = ee.ExitCode()
	}
	return string(out), code
}

// redFlags is the seeded known-violation: the under-provisioned failure
// detector from the campaign package's red/green tests, as CLI flags.
var redFlags = []string{
	"-n", "16", "-q", "4", "-random-plans", "2",
	"-detector-rtos", "4", "-detector-misses", "2",
	"-max-attempts", "3", "-max-rto-factor", "8",
}

func TestSweepFindsShrinksAndReplays(t *testing.T) {
	dir := t.TempDir()
	out, code := runCampaign(t, dir, append([]string{"-sweep"}, redFlags...)...)
	if code != 0 {
		t.Fatalf("sweep exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "VIOLATES completes") {
		t.Fatalf("sweep did not find the seeded detector violation:\n%s", out)
	}
	if !strings.Contains(out, "shrunk") {
		t.Fatalf("sweep did not shrink the finding:\n%s", out)
	}

	art := filepath.Join(dir, "campaign-artifacts", "repro-000.json")
	r, err := campaign.LoadFile(art)
	if err != nil {
		t.Fatalf("artifact missing or unreadable: %v", err)
	}
	if r.MinimizedCoords >= r.DiscoveredCoords {
		t.Fatalf("artifact not minimized: %d → %d coords", r.DiscoveredCoords, r.MinimizedCoords)
	}

	out, code = runCampaign(t, dir, "-replay", art)
	if code != 0 || !strings.Contains(out, "reproduces bitwise on both backends") {
		t.Fatalf("replay exit %d:\n%s", code, out)
	}

	// A tampered artifact must fail to replay with exit 1.
	r.Expected.StatsDigest = "0000000000000000"
	data, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "tampered.json")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out, code = runCampaign(t, dir, "-replay", bad)
	if code != 1 || !strings.Contains(out, "DOES NOT REPRODUCE") {
		t.Fatalf("tampered replay exit %d, want 1:\n%s", code, out)
	}
}

func TestShrinkRewritesArtifactInPlace(t *testing.T) {
	dir := t.TempDir()
	if out, code := runCampaign(t, dir, append([]string{"-sweep", "-budget", "40"}, redFlags...)...); code != 0 {
		t.Fatalf("sweep exit %d:\n%s", code, out)
	}
	art := filepath.Join(dir, "campaign-artifacts", "repro-000.json")
	out, code := runCampaign(t, dir, "-shrink", art, "-shrink-budget", "120")
	if code != 0 || !strings.Contains(out, "re-minimized") {
		t.Fatalf("shrink exit %d:\n%s", code, out)
	}
	if out, code = runCampaign(t, dir, "-replay", art); code != 0 {
		t.Fatalf("replay after shrink exit %d:\n%s", code, out)
	}
}

func TestBadFlagsExitTwo(t *testing.T) {
	dir := t.TempDir()
	cases := [][]string{
		{},                    // no mode
		{"-sweep", "-resume"}, // two modes
		{"-sweep", "-runtime", "nope"},
		{"-sweep", "-machine", "nope"},
		{"-sweep", "-n", "15", "-q", "4"}, // n not divisible by q
		{"-sweep", "-drop", "1.5"},
	}
	for _, args := range cases {
		if out, code := runCampaign(t, dir, args...); code != 2 {
			t.Errorf("campaign %v: exit %d, want 2\n%s", args, code, out)
		}
	}
}

// TestInterruptAndResume sends SIGINT mid-sweep (the documented contract:
// exit 130, checkpoint saved), resumes, and requires the final checkpoint
// byte-identical to an uninterrupted reference run of the same flags.
func TestInterruptAndResume(t *testing.T) {
	// Enough seeded compound cells to keep the sweep running while the
	// signal lands; the stock target keeps them all green and fast.
	flags := []string{"-sweep", "-n", "16", "-q", "4", "-random-plans", "150"}

	refDir := t.TempDir()
	if out, code := runCampaign(t, refDir, flags...); code != 0 {
		t.Fatalf("reference sweep exit %d:\n%s", code, out)
	}
	refState, err := os.ReadFile(filepath.Join(refDir, "campaign.state.json"))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], flags...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CAMPAIGN_RUN_MAIN=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Interrupt once the sweep is provably mid-corpus.
	scanner := bufio.NewScanner(stdout)
	interrupted := false
	for scanner.Scan() {
		if !interrupted && strings.Contains(scanner.Text(), "cell ") {
			if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
				t.Fatal(err)
			}
			interrupted = true
		}
	}
	if !interrupted {
		t.Fatal("sweep produced no cell lines to interrupt at")
	}
	err = cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 130 {
		t.Fatalf("interrupted sweep: %v, want exit 130", err)
	}

	// The checkpoint must be a valid mid-sweep state…
	data, err := os.ReadFile(filepath.Join(dir, "campaign.state.json"))
	if err != nil {
		t.Fatalf("no checkpoint after SIGINT: %v", err)
	}
	var st campaign.State
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("torn checkpoint: %v", err)
	}
	if st.Completed {
		t.Fatal("interrupted checkpoint claims completion")
	}

	// …and resuming must land on the reference corpus byte for byte.
	if out, code := runCampaign(t, dir, "-resume"); code != 0 {
		t.Fatalf("resume exit %d:\n%s", code, out)
	}
	finalState, err := os.ReadFile(filepath.Join(dir, "campaign.state.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refState, finalState) {
		t.Error("resumed checkpoint differs from the uninterrupted reference run")
	}
}
