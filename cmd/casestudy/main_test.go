package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// The test binary re-executes itself with CASESTUDY_RUN_MAIN=1 so main()
// runs exactly as shipped, flag parsing included.
func TestMain(m *testing.M) {
	if os.Getenv("CASESTUDY_RUN_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

func runCasestudy(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "CASESTUDY_RUN_MAIN=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("casestudy %v failed: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestDefaultPrintsEverything(t *testing.T) {
	out := runCasestudy(t)
	for _, want := range []string{
		"Table I: Jaketown model parameters",
		"Table II: device survey",
		"Figure 6: GFLOPS/W of 2.5D matmul",
		"Figure 7: GFLOPS/W halving gamma_e, beta_e, delta_e together",
		"75 GFLOPS/W reached after",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("default output missing %q", want)
		}
	}
}

func TestSingleArtifactFlags(t *testing.T) {
	// Each flag selects exactly its artifact.
	t1 := runCasestudy(t, "-table1")
	if !strings.Contains(t1, "Table I") || strings.Contains(t1, "Table II") {
		t.Errorf("-table1 output wrong:\n%s", t1)
	}
	f7 := runCasestudy(t, "-fig7")
	if !strings.Contains(f7, "Figure 7") || strings.Contains(f7, "Figure 6") {
		t.Errorf("-fig7 output wrong:\n%s", f7)
	}
}

func TestCSVMode(t *testing.T) {
	out := runCasestudy(t, "-table2", "-csv")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 2 {
		t.Fatalf("CSV output too short:\n%s", out)
	}
	header := lines[0]
	if !strings.HasPrefix(header, "device,") {
		t.Errorf("CSV header %q", header)
	}
	cols := strings.Count(header, ",")
	for i, l := range lines[1:] {
		if strings.Count(l, ",") < cols {
			t.Errorf("CSV row %d has fewer columns than the header: %q", i+1, l)
		}
	}
	if strings.Contains(out, "|") || strings.Contains(out, "---") {
		t.Error("CSV mode leaked table rendering")
	}
}

func TestDeterministic(t *testing.T) {
	if runCasestudy(t) != runCasestudy(t) {
		t.Error("two casestudy runs differ")
	}
}
