// Command casestudy regenerates the Section VI artifacts:
//
//	-table1  the Jaketown model parameters, derived vs printed
//	-table2  the device survey with recomputed γt, γe and GFLOPS/W
//	-fig6    efficiency under independent scaling of γe, βe, δe
//	-fig7    efficiency under joint scaling (the 75 GFLOPS/W trajectory)
//
// With no flags it prints everything.
package main

import (
	"flag"
	"fmt"

	"perfscale/internal/casestudy"
	"perfscale/internal/machine"
	"perfscale/internal/report"
)

func main() {
	var (
		t1   = flag.Bool("table1", false, "Table I parameters")
		t2   = flag.Bool("table2", false, "Table II device survey")
		f6   = flag.Bool("fig6", false, "Figure 6 independent scaling")
		f7   = flag.Bool("fig7", false, "Figure 7 joint scaling")
		gens = flag.Int("generations", 8, "process generations to sweep")
		csv  = flag.Bool("csv", false, "emit CSV")
	)
	flag.Parse()
	all := !*t1 && !*t2 && !*f6 && !*f7

	emit := func(t *report.Table) {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.Render())
		}
	}

	if all || *t1 {
		t := report.NewTable("Table I: Jaketown model parameters (derived vs printed)",
			"parameter", "derived", "printed", "rel err")
		for _, r := range casestudy.Table1() {
			rel := 0.0
			if r.Printed != 0 {
				rel = (r.Derived - r.Printed) / r.Printed
			}
			t.AddRow(r.Name, r.Derived, r.Printed, rel)
		}
		emit(t)
	}

	if all || *t2 {
		t := report.NewTable("Table II: device survey (derived columns recomputed)",
			"device", "peak GFLOP/s", "gamma_t (s/flop)", "gamma_e (J/flop)", "GFLOPS/W", "eff err")
		for _, r := range casestudy.Table2() {
			t.AddRow(r.Device.Name, r.PeakGFLOPS, r.GammaT, r.GammaE, r.GFLOPSPerW, r.EffErr)
		}
		emit(t)
	}

	if all || *f6 {
		t := report.NewTable(fmt.Sprintf(
			"Figure 6: GFLOPS/W of 2.5D matmul (n=%d, p=%d) halving one parameter per generation",
			casestudy.CaseN, casestudy.CaseP),
			"generation", "scale gamma_e", "scale beta_e", "scale delta_e")
		pts := casestudy.Fig6(*gens)
		byGen := map[int]map[machine.EnergyField]float64{}
		for _, p := range pts {
			if byGen[p.Generation] == nil {
				byGen[p.Generation] = map[machine.EnergyField]float64{}
			}
			byGen[p.Generation][p.Field] = p.Efficiency
		}
		series := make([]report.Series, 3)
		for i, f := range casestudy.Fig6Fields {
			series[i].Name = f.String()
		}
		for g := 0; g <= *gens; g++ {
			row := byGen[g]
			t.AddRow(g, row[machine.FieldGammaE], row[machine.FieldBetaE], row[machine.FieldDeltaE])
			for i, f := range casestudy.Fig6Fields {
				series[i].Add(float64(g), row[f])
			}
		}
		emit(t)
		if !*csv {
			fmt.Println(report.Chart("Figure 6 (y = GFLOPS/W)", 50, 12, false, false, series...))
			for _, f := range casestudy.Fig6Fields {
				fmt.Printf("saturation limit scaling only %s: %s GFLOPS/W\n",
					f, report.FormatFloat(casestudy.SaturationEfficiency(f)))
			}
			fmt.Println()
		}
	}

	if all || *f7 {
		t := report.NewTable("Figure 7: GFLOPS/W halving gamma_e, beta_e, delta_e together",
			"generation", "improvement multiplier", "GFLOPS/W")
		var s report.Series
		s.Name = "joint scaling"
		for _, p := range casestudy.Fig7(*gens) {
			t.AddRow(p.Generation, p.Multiplier, p.Efficiency)
			s.Add(float64(p.Generation), p.Efficiency)
		}
		emit(t)
		if !*csv {
			fmt.Println(report.Chart("Figure 7 (y = GFLOPS/W)", 50, 12, false, false, s))
			g := casestudy.GenerationsToTarget(75, *gens+5)
			fmt.Printf("75 GFLOPS/W reached after %d generations (paper: ~5)\n", g)
		}
	}
}
