// Command trace runs one (algorithm, p, M, fault-plan) point with the full
// observability stack and exports what the aggregate counters cannot show:
// a Chrome/Perfetto trace (one track per rank, phase slices, fault/crash
// instants, cumulative W/S/E counter tracks), an optional JSONL event
// stream, CSV energy/communication matrices, and a text summary splitting
// Eq. 2's energy into its γe/βe/αe/δe·M·T/εe terms per rank and along the
// critical path. Open the trace at https://ui.perfetto.dev or
// chrome://tracing.
//
// Usage:
//
//	trace -alg matmul -q 32 -c 1 -n 128 -out trace.json
//	trace -alg matmul -q 16 -faults -selfcheck -events events.jsonl
//	trace -alg nbody -p 64 -c 2 -n 256 -energy energy.csv -comm comm.csv
//
// With -faults the run is driven through a canned, always-completing fault
// plan — a respawned mid-run crash plus a degraded-bandwidth window —
// calibrated from a fault-free probe run (drops are deliberately absent:
// raw-channel programs cannot recover a silently lost message). -selfcheck
// reruns the same point untraced and verifies the traced run's energy
// attribution is bit-identical, and the emitted JSON parses with monotone
// counters.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/metrics"
	"runtime/pprof"
	"time"

	"perfscale/internal/core"
	"perfscale/internal/machine"
	"perfscale/internal/matmul"
	"perfscale/internal/matrix"
	"perfscale/internal/nbody"
	"perfscale/internal/obs"
	"perfscale/internal/sim"
	"perfscale/internal/strassen"

	lupkg "perfscale/internal/lu"
)

func main() {
	var (
		alg      = flag.String("alg", "matmul", "algorithm: matmul, summa, caps, lu, nbody")
		mach     = flag.String("machine", "simdefault", "machine preset name or .json parameter file")
		n        = flag.Int("n", 128, "problem size (matrix dimension or body count)")
		q        = flag.Int("q", 16, "grid size (matmul, lu); p = q²·c")
		c        = flag.Int("c", 1, "replication factor (matmul, lu, nbody)")
		p        = flag.Int("p", 64, "ranks (nbody)")
		k        = flag.Int("k", 1, "BFS recursion depth (caps); p = 7^k")
		out      = flag.String("out", "trace.json", "Chrome/Perfetto trace output path")
		events   = flag.String("events", "", "optional JSONL event-stream output path")
		energy   = flag.String("energy", "", "optional per-rank energy split CSV path")
		comm     = flag.String("comm", "", "optional communication-matrix CSV path")
		faults   = flag.Bool("faults", false, "inject the canned completing fault plan")
		seed     = flag.Uint64("seed", 42, "fault-plan seed")
		tail     = flag.Int("tail", 256, "ring-buffer window printed when the run fails")
		cpuprof  = flag.String("pprof", "", "write a host CPU profile of the traced run")
		hostStat = flag.Bool("runtime-metrics", false, "report host runtime/metrics after the run")
		check    = flag.Bool("selfcheck", false, "verify bit-identical energy vs an untraced rerun and validate the trace JSON")
	)
	flag.Parse()

	m, err := machine.Resolve(*mach)
	if err != nil {
		fatal(err)
	}
	cost := sim.Cost{
		GammaT: m.GammaT, BetaT: m.BetaT, AlphaT: m.AlphaT,
		MaxMsgWords:     int(m.MaxMsgWords),
		ChanCap:         8,
		WatchdogTimeout: 10 * time.Minute,
	}

	run, ranks, err := buildRun(*alg, *n, *q, *c, *p, *k)
	if err != nil {
		fatal(err)
	}

	if *faults {
		// Calibrate the plan off a fault-free probe so the crash and the
		// degraded window land mid-run whatever the point's scale.
		probe, err := run(cost)
		if err != nil {
			fatal(fmt.Errorf("fault-plan probe run: %w", err))
		}
		cost.Faults = cannedPlan(*seed, ranks, probe.Time())
		fmt.Printf("probe T = %g s; injecting respawn crash on rank %d and degraded window\n",
			probe.Time(), ranks/2)
	}

	traced := cost
	traced.Trace = true
	col := obs.NewCollector(ranks)
	ring := obs.NewRingBuffer(*tail)
	traced.Observers = []sim.Observer{col, ring}
	var jw *obs.JSONLWriter
	var eventsFile *os.File
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			fatal(err)
		}
		eventsFile = f
		jw = obs.NewJSONLWriter(f)
		traced.Observers = append(traced.Observers, jw)
	}

	var profFile *os.File
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fatal(err)
		}
		profFile = f
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
	}

	start := time.Now()
	res, err := run(traced)
	wall := time.Since(start)
	if profFile != nil {
		// Stop and close eagerly: the deferred-Close idiom would silently
		// drop both the flush implied by Stop and any Close error on every
		// os.Exit path, leaving a truncated profile with status 0.
		pprof.StopCPUProfile()
		if cerr := profFile.Close(); cerr != nil {
			fatal(fmt.Errorf("closing %s: %w", *cpuprof, cerr))
		}
	}
	if err != nil {
		// The bounded window is exactly for this moment: show the last
		// events each rank managed before the failure.
		fmt.Fprintf(os.Stderr, "run failed: %v\n\nlast %d events before failure:\n", err, *tail)
		for _, e := range ring.Snapshot() {
			fmt.Fprintf(os.Stderr, "  [%12.9f] rank %-4d %-8s peer=%-4d %s\n",
				e.Start, e.Rank, e.Kind, e.Peer, e.Name)
		}
		os.Exit(1)
	}
	if jw != nil {
		if err := jw.Flush(); err != nil {
			fatal(err)
		}
		if err := eventsFile.Close(); err != nil {
			fatal(fmt.Errorf("closing %s: %w", *events, err))
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := obs.WriteChromeTrace(f, col, obs.TraceOptions{Machine: &m, Result: res}); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}

	s := obs.NewSummary(m, res, col)
	if err := s.WriteText(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Printf("host wall time %.3fs; %d events observed; wrote %s (open at ui.perfetto.dev)\n",
		wall.Seconds(), ring.Total(), *out)

	if *energy != "" {
		if err := writeFile(*energy, s.WriteEnergyCSV); err != nil {
			fatal(err)
		}
	}
	if *comm != "" {
		if err := writeFile(*comm, s.WriteCommCSV); err != nil {
			fatal(err)
		}
	}

	if *check {
		if err := selfcheck(m, cost, run, s, *out); err != nil {
			fatal(fmt.Errorf("selfcheck FAILED: %w", err))
		}
		fmt.Println("selfcheck passed: energy attribution bit-identical to untraced run; trace JSON valid, counters monotone")
	}

	if *hostStat {
		reportHostMetrics()
	}
}

// buildRun resolves the algorithm flag into a closure running one point and
// the rank count that point uses.
func buildRun(alg string, n, q, c, p, k int) (func(sim.Cost) (*sim.Result, error), int, error) {
	switch alg {
	case "matmul", "summa":
		f := matmul.TwoPointFiveD
		if alg == "summa" {
			f = matmul.TwoPointFiveDSUMMA
		}
		a := matrix.Random(n, n, 1)
		b := matrix.Random(n, n, 2)
		return func(cost sim.Cost) (*sim.Result, error) {
			run, err := f(cost, q, c, a, b)
			if err != nil {
				return nil, err
			}
			return run.Sim, nil
		}, q * q * c, nil
	case "caps":
		ranks := 1
		for i := 0; i < k; i++ {
			ranks *= 7
		}
		a := matrix.Random(n, n, 1)
		b := matrix.Random(n, n, 2)
		return func(cost sim.Cost) (*sim.Result, error) {
			run, err := strassen.CAPS(cost, k, a, b, 0)
			if err != nil {
				return nil, err
			}
			return run.Sim, nil
		}, ranks, nil
	case "lu":
		a := matrix.RandomDiagDominant(n, 3)
		return func(cost sim.Cost) (*sim.Result, error) {
			run, err := lupkg.Stacked(cost, q, c, a)
			if err != nil {
				return nil, err
			}
			return run.Sim, nil
		}, q * q * c, nil
	case "nbody":
		bodies := nbody.RandomBodies(n, 3)
		return func(cost sim.Cost) (*sim.Result, error) {
			run, err := nbody.Replicated(cost, p, c, bodies)
			if err != nil {
				return nil, err
			}
			return run.Sim, nil
		}, p, nil
	}
	return nil, 0, fmt.Errorf("unknown algorithm %q (want matmul, summa, caps, lu or nbody)", alg)
}

// cannedPlan builds a fault plan that always completes: a respawned crash
// on a middle rank at 25% of the probe runtime plus an all-links degraded
// window over the middle third. No drops — raw-channel programs cannot
// recover a silently lost message.
func cannedPlan(seed uint64, ranks int, probeT float64) *sim.FaultPlan {
	return &sim.FaultPlan{
		Seed:       seed,
		Crashes:    map[int]float64{ranks / 2: 0.25 * probeT},
		Respawn:    true,
		RebootTime: 0.05 * probeT,
		Degraded: []sim.DegradedLink{
			{Src: -1, Dst: -1, From: 0.3 * probeT, Until: 0.6 * probeT, AlphaFactor: 4, BetaFactor: 2},
		},
	}
}

// selfcheck reruns the point untraced under the identical cost and fault
// plan, and requires (1) bit-identical per-rank Stats, (2) the traced
// summary's total energy bit-identical to pricing the untraced run, and
// (3) the written trace JSON to parse with monotone counter tracks.
func selfcheck(m machine.Params, cost sim.Cost, run func(sim.Cost) (*sim.Result, error), s *obs.Summary, tracePath string) error {
	plain, err := run(cost)
	if err != nil {
		return fmt.Errorf("untraced rerun: %w", err)
	}
	for i := range plain.PerRank {
		if plain.PerRank[i] != s.Ranks[i] {
			return fmt.Errorf("rank %d stats differ traced vs untraced:\n  traced   %+v\n  untraced %+v",
				i, s.Ranks[i], plain.PerRank[i])
		}
	}
	want := core.PriceSim(m, plain)
	if s.Total != want {
		return fmt.Errorf("energy attribution differs from untraced pricing:\n  traced   %+v\n  untraced %+v",
			s.Total, want)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		return err
	}
	stats, err := obs.ValidateChromeTrace(data)
	if err != nil {
		return err
	}
	if stats.RankTracks != s.P {
		return fmt.Errorf("trace has %d rank tracks, run had %d ranks", stats.RankTracks, s.P)
	}
	if stats.PhaseSlices == 0 {
		return fmt.Errorf("trace carries no phase slices")
	}
	fmt.Printf("trace: %d slices (%d phase) on %d tracks, %d instants, %d counter samples\n",
		stats.Slices, stats.PhaseSlices, stats.RankTracks, stats.Instants, stats.CounterEvents)
	return nil
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// reportHostMetrics prints a few host-process runtime/metrics so large
// traced runs can be correlated with their memory/GC footprint.
func reportHostMetrics() {
	names := []string{
		"/memory/classes/total:bytes",
		"/memory/classes/heap/objects:bytes",
		"/gc/cycles/total:gc-cycles",
		"/sched/goroutines:goroutines",
	}
	samples := make([]metrics.Sample, len(names))
	for i, name := range names {
		samples[i].Name = name
	}
	metrics.Read(samples)
	fmt.Println("host runtime/metrics:")
	for _, sm := range samples {
		switch sm.Value.Kind() {
		case metrics.KindUint64:
			fmt.Printf("  %-36s %d\n", sm.Name, sm.Value.Uint64())
		case metrics.KindFloat64:
			fmt.Printf("  %-36s %g\n", sm.Name, sm.Value.Float64())
		default:
			fmt.Printf("  %-36s (unsupported kind)\n", sm.Name)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
