// Command scalediff divides two phase profiles of the same algorithm and
// names the phase that stopped scaling — the Hatchet-style divide operator
// of internal/analytics on the command line. Three modes:
//
//	scalediff -alg matmul -n 96 -q 4 -c 1 -c2 4
//	    run the algorithm at c and c2, diff the profiles against the
//	    perfect-strong-scaling prediction (span ratio pA/pB), flag the
//	    phases off the curve;
//
//	scalediff -alg matmul -n 64 -q 4 -degrade multiply-shift -degrade-beta 50
//	    run clean, extract the named phase's virtual-time window, re-run
//	    with every link degraded inside that window, and diff — the tool
//	    must name the degraded phase as the bottleneck;
//
//	scalediff -baseline BENCH_scaling.json -current curves.json
//	    regression gate: compare efficiency-vs-p curve files and exit 1
//	    when any row or phase degraded beyond -tol.
//
// Output is an annotated text table by default, JSON with -json, to stdout
// or -o file. Write failures exit non-zero.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"perfscale/internal/analytics"
	"perfscale/internal/bounds"
	"perfscale/internal/fft"
	"perfscale/internal/machine"
	"perfscale/internal/matmul"
	"perfscale/internal/matrix"
	"perfscale/internal/nbody"
	"perfscale/internal/obs"
	"perfscale/internal/report"
	"perfscale/internal/sim"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		alg     = flag.String("alg", "matmul", "algorithm: matmul, nbody, fft")
		n       = flag.Int("n", 96, "problem size (matrix dim, bodies, or FFT length)")
		q       = flag.Int("q", 4, "base grid: matmul p=q²·c, nbody/fft p=q·c")
		c       = flag.Int("c", 1, "replication of side A")
		c2      = flag.Int("c2", 0, "replication of side B (default: same as -c)")
		mach    = flag.String("machine", "simdefault", "machine preset name or .json parameter file")
		runtime = flag.String("runtime", "goroutine", "simulator backend: goroutine or event")

		degrade      = flag.String("degrade", "", "degrade mode: slow every link inside the named phase's window on side B")
		degradeAlpha = flag.Float64("degrade-alpha", 1, "latency inflation factor for -degrade")
		degradeBeta  = flag.Float64("degrade-beta", 20, "per-word inflation factor for -degrade")

		baseline = flag.String("baseline", "", "gate mode: committed curves file to compare against")
		current  = flag.String("current", "", "gate mode: freshly measured curves file")
		tol      = flag.Float64("tol", analytics.DefaultGateTolerance, "gate/diff tolerance")

		expected = flag.Float64("expected", 0, "override the expected span ratio B/A (default: pA/pB, or 1 with -degrade)")
		jsonOut  = flag.Bool("json", false, "emit JSON instead of the annotated table")
		outPath  = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	w, closeOut, err := report.OpenOutput(*outPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scalediff:", err)
		return 1
	}
	code := func() int {
		if *baseline != "" || *current != "" {
			return runGate(w, *baseline, *current, *tol, *jsonOut)
		}
		return runDiff(w, diffSpec{
			alg: *alg, n: *n, q: *q, c: *c, c2: *c2,
			mach: *mach, runtime: *runtime,
			degrade: *degrade, degradeAlpha: *degradeAlpha, degradeBeta: *degradeBeta,
			expected: *expected, tol: *tol, jsonOut: *jsonOut,
		})
	}()
	if err := w.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "scalediff: writing report:", err)
		code = 1
	}
	if err := closeOut(); err != nil {
		fmt.Fprintln(os.Stderr, "scalediff: closing output:", err)
		code = 1
	}
	return code
}

// runGate is the regression-gate mode.
func runGate(w *report.ErrWriter, basePath, curPath string, tol float64, jsonOut bool) int {
	if basePath == "" || curPath == "" {
		fmt.Fprintln(os.Stderr, "scalediff: gate mode needs both -baseline and -current")
		return 2
	}
	base, err := analytics.LoadCurves(basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scalediff:", err)
		return 2
	}
	cur, err := analytics.LoadCurves(curPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scalediff:", err)
		return 2
	}
	regs := analytics.CheckCurves(cur, base, tol)
	if jsonOut {
		writeJSON(w, map[string]any{"regressions": regs, "baseline_rows": len(base), "current_rows": len(cur)})
	} else {
		w.Printf("scaling gate: %d baseline rows, %d current rows, tolerance %.3g\n", len(base), len(cur), tol)
		for _, r := range regs {
			w.Println("REGRESSION:", r.String())
		}
		if len(regs) == 0 {
			w.Println("no scaling regressions")
		}
	}
	if len(regs) > 0 {
		return 1
	}
	return 0
}

type diffSpec struct {
	alg                       string
	n, q, c, c2               int
	mach, runtime             string
	degrade                   string
	degradeAlpha, degradeBeta float64
	expected, tol             float64
	jsonOut                   bool
}

func runDiff(w *report.ErrWriter, s diffSpec) int {
	m, err := machine.Resolve(s.mach)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scalediff:", err)
		return 2
	}
	var rt sim.Runtime
	switch s.runtime {
	case "goroutine":
		rt = sim.RuntimeGoroutine
	case "event":
		rt = sim.RuntimeEvent
	default:
		fmt.Fprintln(os.Stderr, "scalediff: unknown -runtime", s.runtime)
		return 2
	}
	if s.c2 == 0 {
		s.c2 = s.c
	}
	if s.degrade != "" && s.c2 != s.c {
		fmt.Fprintln(os.Stderr, "scalediff: -degrade compares equal configurations; drop -c2")
		return 2
	}

	cost := sim.Cost{GammaT: m.GammaT, BetaT: m.BetaT, AlphaT: m.AlphaT,
		MaxMsgWords: int(m.MaxMsgWords), Runtime: rt}
	profA, err := runProfile(m, cost, s.alg, s.n, s.q, s.c)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scalediff:", err)
		return 2
	}

	costB := cost
	if s.degrade != "" {
		ps := profA.Phase(s.degrade)
		if ps == nil {
			fmt.Fprintf(os.Stderr, "scalediff: run has no phase %q (phases:", s.degrade)
			for _, p := range profA.Phases {
				fmt.Fprintf(os.Stderr, " %s", p.Name)
			}
			fmt.Fprintln(os.Stderr, ")")
			return 2
		}
		costB.Faults = &sim.FaultPlan{
			Seed: 1,
			Degraded: []sim.DegradedLink{{
				Src: -1, Dst: -1,
				From: ps.Start, Until: ps.End,
				AlphaFactor: s.degradeAlpha, BetaFactor: s.degradeBeta,
			}},
		}
	}
	profB, err := runProfile(m, costB, s.alg, s.n, s.q, s.c2)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scalediff:", err)
		return 2
	}

	exp := s.expected
	if exp == 0 {
		exp = float64(profA.P) / float64(profB.P)
	}
	opt := analytics.DiffOptions{ExpectedRatio: exp, Tolerance: s.tol}
	// Annotate the comparison with the exact perfect-scaling plateau end for
	// the fixed problem and per-rank memory of this configuration, so an
	// efficiency dip past it is attributed to the memory-independent wall.
	switch s.alg {
	case "matmul":
		pl := bounds.ClassicalPlateau(float64(s.n), float64(s.n*s.n)/float64(s.q*s.q))
		opt.PlateauP, opt.PlateauBound = pl.PEnd, pl.IndependentBound
	case "nbody":
		pl := bounds.NBodyPlateau(float64(s.n), float64(s.n)/float64(s.q))
		opt.PlateauP, opt.PlateauBound = pl.PEnd, pl.IndependentBound
	}
	rep := analytics.Diff(profA, profB, opt)
	if s.jsonOut {
		writeJSON(w, map[string]any{"a": profA, "b": profB, "diff": rep})
		return 0
	}
	if err := profA.WriteText(w); err != nil {
		return 1
	}
	w.Println()
	if err := profB.WriteText(w); err != nil {
		return 1
	}
	w.Println()
	if err := rep.WriteText(w); err != nil {
		return 1
	}
	return 0
}

// runProfile executes one observed run of the named algorithm and builds
// its phase profile.
func runProfile(m machine.Params, cost sim.Cost, alg string, n, q, c int) (*analytics.PhaseProfile, error) {
	var p int
	var runFn func() (*sim.Result, error)
	switch alg {
	case "matmul":
		p = q * q * c
		a := matrix.Random(n, n, 31)
		b := matrix.Random(n, n, 32)
		runFn = func() (*sim.Result, error) {
			res, err := matmul.TwoPointFiveD(cost, q, c, a, b)
			if err != nil {
				return nil, err
			}
			return res.Sim, nil
		}
	case "nbody":
		p = q * c
		bodies := nbody.RandomBodies(n, 33)
		runFn = func() (*sim.Result, error) {
			res, err := nbody.Replicated(cost, p, c, bodies)
			if err != nil {
				return nil, err
			}
			return res.Sim, nil
		}
	case "fft":
		p = q * c
		rng := rand.New(rand.NewSource(45))
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		runFn = func() (*sim.Result, error) {
			res, err := fft.Distributed(cost, p, x, true)
			if err != nil {
				return nil, err
			}
			return res.Sim, nil
		}
	default:
		return nil, fmt.Errorf("unknown -alg %q (want matmul, nbody, or fft)", alg)
	}
	col := obs.NewCollector(p)
	cost.Observers = append(cost.Observers, col)
	res, err := runFn()
	if err != nil {
		return nil, fmt.Errorf("%s p=%d: %w", alg, p, err)
	}
	meta := analytics.Meta{Algorithm: alg, Runtime: cost.Runtime.String(), N: n, C: c}
	return analytics.BuildProfile(m, res, col, meta), nil
}

func writeJSON(w *report.ErrWriter, v any) {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "scalediff:", err)
		return
	}
	w.Println(string(buf))
}
