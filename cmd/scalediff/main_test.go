package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"perfscale/internal/analytics"
)

// The test binary re-executes itself with SCALEDIFF_RUN_MAIN=1 so main()
// runs exactly as shipped, flag parsing and exit codes included.
func TestMain(m *testing.M) {
	if os.Getenv("SCALEDIFF_RUN_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

func runScalediff(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "SCALEDIFF_RUN_MAIN=1")
	out, err := cmd.CombinedOutput()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("scalediff %v did not run: %v\n%s", args, err, out)
		}
		code = ee.ExitCode()
	}
	return string(out), code
}

// TestDegradedPhaseNamedBottleneck is the acceptance-criterion scenario on
// the CLI: a fault-plan-slowed shift phase must be named as the scaling
// bottleneck.
func TestDegradedPhaseNamedBottleneck(t *testing.T) {
	out, code := runScalediff(t, "-alg", "matmul", "-n", "64", "-q", "4",
		"-degrade", "multiply-shift", "-degrade-beta", "50")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "scaling bottleneck: multiply-shift") {
		t.Fatalf("degraded phase not named:\n%s", out)
	}
}

func TestStrongScalingDiff(t *testing.T) {
	out, code := runScalediff(t, "-alg", "matmul", "-n", "96", "-q", "4", "-c", "1", "-c2", "4")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "p=16 -> p=64") {
		t.Fatalf("diff header missing:\n%s", out)
	}
	// The work-bearing phase must shrink toward the predicted 1/4 span;
	// replicate/reduce exist only on the c=4 side and are correctly
	// surfaced as one-sided rows.
	if !strings.Contains(out, "multiply-shift") || !strings.Contains(out, "replicate") {
		t.Fatalf("expected phase rows missing:\n%s", out)
	}

	// Identical configurations: no phase may be flagged.
	out, code = runScalediff(t, "-alg", "matmul", "-n", "64", "-q", "4")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if strings.Contains(out, "BOTTLENECK") {
		t.Fatalf("identical runs flagged a bottleneck:\n%s", out)
	}
	if !strings.Contains(out, "all phases within tolerance") {
		t.Fatalf("clean verdict missing:\n%s", out)
	}
}

func TestJSONOutput(t *testing.T) {
	out, code := runScalediff(t, "-alg", "fft", "-n", "256", "-q", "4", "-json")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	var doc struct {
		A    *analytics.PhaseProfile `json:"a"`
		Diff *analytics.DiffReport   `json:"diff"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if doc.A == nil || doc.A.Phase("all-to-all") == nil {
		t.Fatalf("fft profile misses all-to-all phase: %+v", doc.A)
	}
}

func TestGateMode(t *testing.T) {
	dir := t.TempDir()
	base := []analytics.CurvePoint{{
		Family: "strong", Algorithm: "matmul-2.5d", Runtime: "goroutine",
		N: 96, P: 16, C: 1, SimT: 1, Efficiency: 1,
		PhaseSpans: map[string]float64{"multiply-shift": 0.5},
	}}
	basePath := filepath.Join(dir, "base.json")
	if err := analytics.WriteCurves(basePath, "simdefault", base); err != nil {
		t.Fatal(err)
	}

	// Identical current: gate passes.
	out, code := runScalediff(t, "-baseline", basePath, "-current", basePath)
	if code != 0 {
		t.Fatalf("clean gate exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "no scaling regressions") {
		t.Fatalf("clean gate output wrong:\n%s", out)
	}

	// Synthetically regressed current: gate exits non-zero.
	bad := []analytics.CurvePoint{base[0]}
	bad[0].Efficiency = 0.8
	badPath := filepath.Join(dir, "bad.json")
	if err := analytics.WriteCurves(badPath, "simdefault", bad); err != nil {
		t.Fatal(err)
	}
	out, code = runScalediff(t, "-baseline", basePath, "-current", badPath)
	if code == 0 {
		t.Fatalf("regressed gate exited 0:\n%s", out)
	}
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "efficiency") {
		t.Fatalf("regression not reported:\n%s", out)
	}
}

func TestBadUsageExitsTwo(t *testing.T) {
	if out, code := runScalediff(t, "-alg", "quicksort"); code != 2 {
		t.Fatalf("unknown algorithm exited %d:\n%s", code, out)
	}
	if out, code := runScalediff(t, "-baseline", "/does/not/exist", "-current", "/does/not/exist"); code != 2 {
		t.Fatalf("missing curve files exited %d:\n%s", code, out)
	}
	if out, code := runScalediff(t, "-degrade", "no-such-phase"); code != 2 {
		t.Fatalf("unknown phase exited %d:\n%s", code, out)
	}
}

func TestOutputFileAndWriteFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "diff.txt")
	out, code := runScalediff(t, "-alg", "matmul", "-n", "32", "-q", "2", "-o", path)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "scaling diff") {
		t.Fatalf("report file wrong:\n%s", data)
	}

	if _, err := os.Stat("/dev/full"); err == nil {
		out, code := runScalediff(t, "-alg", "matmul", "-n", "32", "-q", "2", "-o", "/dev/full")
		if code == 0 {
			t.Fatalf("ENOSPC write exited 0:\n%s", out)
		}
	}
}
