// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (experiments E1–E16 of DESIGN.md). Each benchmark
// regenerates the experiment's data and reports its headline numbers as
// custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces every artifact in one run. The companion cmd/ tools print the
// same data as human-readable tables.
package perfscale_test

import (
	"math"
	"testing"

	"perfscale/internal/bounds"
	"perfscale/internal/casestudy"
	"perfscale/internal/core"
	"perfscale/internal/fft"
	"perfscale/internal/hetero"
	"perfscale/internal/lu"
	"perfscale/internal/machine"
	"perfscale/internal/matmul"
	"perfscale/internal/matrix"
	"perfscale/internal/nbody"
	"perfscale/internal/opt"
	"perfscale/internal/seq"
	"perfscale/internal/sim"
	"perfscale/internal/strassen"
)

func simCost(m machine.Params) sim.Cost {
	return sim.Cost{GammaT: m.GammaT, BetaT: m.BetaT, AlphaT: m.AlphaT, MaxMsgWords: int(m.MaxMsgWords)}
}

// BenchmarkFig3StrongScalingLimits (E1) regenerates Figure 3: W·p against p
// for classical and Strassen-like matmul. Reported metrics: the p at which
// each curve leaves its flat (perfect-scaling) region.
func BenchmarkFig3StrongScalingLimits(b *testing.B) {
	const n, mem = 65536, 1 << 24
	var pts []bounds.Fig3Point
	for i := 0; i < b.N; i++ {
		pts = bounds.Fig3Series(n, mem, 200)
	}
	_ = pts
	b.ReportMetric(bounds.MatMulPMax(n, mem), "classical-pmax")
	b.ReportMetric(bounds.FastMatMulPMax(n, mem, bounds.OmegaStrassen), "strassen-pmax")
}

// BenchmarkTablePerfectScalingMatMul (E2) regenerates the perfect-strong-
// scaling table for 2.5D matmul: a model sweep (energy deviation must be 0)
// plus real simulator runs at p = 16, 32, 64 (speedup at c=4 reported).
func BenchmarkTablePerfectScalingMatMul(b *testing.B) {
	m := machine.SimDefault()
	var eDev, speedup float64
	for i := 0; i < b.N; i++ {
		pts := core.MatMulStrongScalingSweep(m, 1<<15, 64, 8)
		eDev, _ = core.PerfectScaling(pts)

		// Bandwidth-dominated costs, as in the perfect-scaling regime the
		// model describes (the default preset's 1 µs latency would swamp the
		// toy-sized blocks).
		cost := sim.Cost{GammaT: 1e-9, BetaT: 4e-9, AlphaT: 1e-8}
		a := matrix.Random(96, 96, 1)
		bb := matrix.Random(96, 96, 2)
		r1, err := matmul.TwoPointFiveD(cost, 4, 1, a, bb)
		if err != nil {
			b.Fatal(err)
		}
		r4, err := matmul.TwoPointFiveD(cost, 4, 4, a, bb)
		if err != nil {
			b.Fatal(err)
		}
		speedup = r1.Sim.Time() / r4.Sim.Time()
	}
	b.ReportMetric(eDev, "model-energy-dev")
	b.ReportMetric(speedup, "sim-speedup-c4")
}

// BenchmarkTable3DLimitEnergy (E3) regenerates the Eq. 11 sweep: energy
// terms along the 3D limit. Reported: the ratio by which memory energy
// falls and bandwidth energy rises from p=64 to p=16384.
func BenchmarkTable3DLimitEnergy(b *testing.B) {
	m := machine.SimDefault()
	var rs []core.Result
	for i := 0; i < b.N; i++ {
		rs = core.MatMul3DLimitSweep(m, 1<<14, []float64{64, 256, 1024, 4096, 16384})
	}
	first, last := rs[0], rs[len(rs)-1]
	b.ReportMetric(first.Energy.Memory/last.Energy.Memory, "memory-energy-drop")
	b.ReportMetric(last.Energy.Bandwidth/first.Energy.Bandwidth, "bandwidth-energy-rise")
}

// BenchmarkTableStrassenEnergy (E4) regenerates the Strassen energy table:
// model sweep (deviation 0) plus CAPS runs on 7 and 49 ranks.
func BenchmarkTableStrassenEnergy(b *testing.B) {
	m := machine.SimDefault()
	var eDev, speedup float64
	for i := 0; i < b.N; i++ {
		pts := core.FastMatMulStrongScalingSweep(m, 1<<15, 49, 6, bounds.OmegaStrassen)
		eDev, _ = core.PerfectScaling(pts)

		cost := sim.Cost{GammaT: 1e-9, BetaT: 4e-9, AlphaT: 1e-8}
		a := matrix.Random(56, 56, 3)
		bb := matrix.Random(56, 56, 4)
		r1, err := strassen.CAPS(cost, 1, a, bb, 8)
		if err != nil {
			b.Fatal(err)
		}
		r2, err := strassen.CAPS(cost, 2, a, bb, 8)
		if err != nil {
			b.Fatal(err)
		}
		speedup = r1.Sim.Time() / r2.Sim.Time()
	}
	b.ReportMetric(eDev, "model-energy-dev")
	b.ReportMetric(speedup, "sim-speedup-7to49")
}

// BenchmarkTableLULatency (E5) regenerates the LU table: bandwidth scales
// with replication but the latency-only critical path does not.
func BenchmarkTableLULatency(b *testing.B) {
	var bwRatio, latRatio float64
	for i := 0; i < b.N; i++ {
		a := matrix.RandomDiagDominant(32, 7)
		w := map[int]float64{}
		lat := map[int]float64{}
		for _, c := range []int{1, 4} {
			res, err := lu.Stacked(sim.Cost{}, 4, c, a)
			if err != nil {
				b.Fatal(err)
			}
			w[c] = res.Sim.TotalStats().WordsSent / float64(16*c)
			resLat, err := lu.Stacked(sim.Cost{AlphaT: 1}, 4, c, a)
			if err != nil {
				b.Fatal(err)
			}
			lat[c] = resLat.Sim.Time()
		}
		bwRatio = w[1] / w[4]      // > 1: bandwidth improves with c
		latRatio = lat[1] / lat[4] // ≈ or < 1: latency does not
	}
	b.ReportMetric(bwRatio, "avg-words-drop-c4")
	b.ReportMetric(latRatio, "latency-ratio-c4")
}

// BenchmarkTableNBodyScaling (E6) regenerates the n-body strong-scaling
// table: model sweep plus simulator runs at c = 1, 2, 4.
func BenchmarkTableNBodyScaling(b *testing.B) {
	m := machine.SimDefault()
	var eDev, speedup float64
	for i := 0; i < b.N; i++ {
		pts := core.NBodyStrongScalingSweep(m, 1e6, 100, 10, nbody.FlopsPerPair)
		eDev, _ = core.PerfectScaling(pts)

		bodies := nbody.RandomBodies(256, 9)
		r1, err := nbody.Replicated(simCost(m), 8, 1, bodies)
		if err != nil {
			b.Fatal(err)
		}
		r4, err := nbody.Replicated(simCost(m), 32, 4, bodies)
		if err != nil {
			b.Fatal(err)
		}
		speedup = r1.Sim.Time() / r4.Sim.Time()
	}
	b.ReportMetric(eDev, "model-energy-dev")
	b.ReportMetric(speedup, "sim-speedup-c4")
}

// BenchmarkFig4aEnergyContours (E7) regenerates Figure 4(a): the execution
// region with its minimum-energy line. Reported: M0 and the feasible cell
// count of the standard grid.
func BenchmarkFig4aEnergyContours(b *testing.B) {
	pb := opt.NBody{M: machine.Illustrative(), N: machine.IllustrativeN, F: 10}
	var g opt.Fig4Grid
	for i := 0; i < b.N; i++ {
		g = opt.NBodyRegionGrid(pb, 6, 100, 48, 24)
	}
	b.ReportMetric(g.M0, "M0-words")
	b.ReportMetric(float64(g.CountFeasible()), "feasible-cells")
}

// BenchmarkFig4bBudgetRegions (E8) regenerates Figure 4(b): cells within an
// energy budget and a per-processor power budget.
func BenchmarkFig4bBudgetRegions(b *testing.B) {
	pb := opt.NBody{M: machine.Illustrative(), N: machine.IllustrativeN, F: 10}
	var inEnergy, inPower int
	for i := 0; i < b.N; i++ {
		g := opt.NBodyRegionGrid(pb, 6, 100, 48, 24)
		budgets := opt.Budgets{
			EnergyMax:    1.5 * g.EStar,
			ProcPowerMax: 1.3 * pb.ProcPower(g.M0),
		}
		inEnergy, inPower = 0, 0
		for _, c := range g.Cells {
			f := budgets.Classify(c)
			if f.WithinEnergy {
				inEnergy++
			}
			if f.WithinProcPower {
				inPower++
			}
		}
	}
	b.ReportMetric(float64(inEnergy), "cells-within-energy")
	b.ReportMetric(float64(inPower), "cells-within-procpower")
}

// BenchmarkFig4cTimePowerRegions (E9) regenerates Figure 4(c): cells within
// a time budget and a total power budget.
func BenchmarkFig4cTimePowerRegions(b *testing.B) {
	pb := opt.NBody{M: machine.Illustrative(), N: machine.IllustrativeN, F: 10}
	var inTime, inPower int
	for i := 0; i < b.N; i++ {
		g := opt.NBodyRegionGrid(pb, 6, 100, 48, 24)
		pHi := pb.N * pb.N / (g.M0 * g.M0)
		budgets := opt.Budgets{
			TimeMax:     3 * pb.Time(pHi, g.M0),
			TotalPowMax: 60 * pb.ProcPower(g.M0),
		}
		inTime, inPower = 0, 0
		for _, c := range g.Cells {
			f := budgets.Classify(c)
			if f.WithinTime {
				inTime++
			}
			if f.WithinTotalPow {
				inPower++
			}
		}
	}
	b.ReportMetric(float64(inTime), "cells-within-time")
	b.ReportMetric(float64(inPower), "cells-within-totalpower")
}

// BenchmarkTableNBodyOptima (E10) regenerates the Section V closed forms
// and cross-checks them numerically. Reported: the relative gap between the
// closed-form M0 and the numeric minimizer (should be ~0).
func BenchmarkTableNBodyOptima(b *testing.B) {
	pb := opt.NBody{M: machine.Illustrative(), N: machine.IllustrativeN, F: 10}
	var gap float64
	for i := 0; i < b.N; i++ {
		closed := pb.OptimalMemory()
		numeric := pb.NumericOptimalMemory()
		gap = math.Abs(closed-numeric) / closed

		if _, _, err := pb.MinEnergyGivenTime(pb.Time(pb.N/closed, closed)); err != nil {
			b.Fatal(err)
		}
		if _, _, err := pb.MinTimeGivenEnergy(1.2 * pb.MinEnergy()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(gap, "closed-vs-numeric-M0")
	b.ReportMetric(pb.MinEnergy(), "Estar-joules")
}

// BenchmarkTable1CaseStudyParams (E11) regenerates Table I: derived vs
// printed parameters. Reported: the worst relative error.
func BenchmarkTable1CaseStudyParams(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = 0
		for _, r := range casestudy.Table1() {
			rel := math.Abs(r.Derived-r.Printed) / math.Abs(r.Printed)
			if rel > worst {
				worst = rel
			}
		}
	}
	b.ReportMetric(worst, "worst-rel-err")
}

// BenchmarkFig6IndependentScaling (E12) regenerates Figure 6. Reported: the
// efficiency after 8 generations of scaling each parameter alone.
func BenchmarkFig6IndependentScaling(b *testing.B) {
	var pts []casestudy.Fig6Point
	for i := 0; i < b.N; i++ {
		pts = casestudy.Fig6(8)
	}
	final := map[machine.EnergyField]float64{}
	for _, p := range pts {
		if p.Generation == 8 {
			final[p.Field] = p.Efficiency
		}
	}
	b.ReportMetric(final[machine.FieldGammaE], "gamma-only-gflopsw")
	b.ReportMetric(final[machine.FieldBetaE], "beta-only-gflopsw")
	b.ReportMetric(final[machine.FieldDeltaE], "delta-only-gflopsw")
}

// BenchmarkFig7JointScaling (E13) regenerates Figure 7. Reported: the
// generation at which 75 GFLOPS/W is reached (paper: ~5).
func BenchmarkFig7JointScaling(b *testing.B) {
	var gen int
	for i := 0; i < b.N; i++ {
		gen = casestudy.GenerationsToTarget(75, 10)
	}
	b.ReportMetric(float64(gen), "generations-to-75")
}

// BenchmarkTable2DeviceSurvey (E14) regenerates Table II. Reported: the
// worst efficiency-column error and the best device's GFLOPS/W.
func BenchmarkTable2DeviceSurvey(b *testing.B) {
	var worst, best float64
	for i := 0; i < b.N; i++ {
		worst, best = 0, 0
		for _, r := range casestudy.Table2() {
			if r.EffErr > worst {
				worst = r.EffErr
			}
			if r.GFLOPSPerW > best {
				best = r.GFLOPSPerW
			}
		}
	}
	b.ReportMetric(worst, "worst-eff-err")
	b.ReportMetric(best, "best-gflopsw")
}

// BenchmarkTableFFTScaling (E15) regenerates the FFT table: naive vs tree
// all-to-all on the simulator plus the model's no-perfect-scaling check.
func BenchmarkTableFFTScaling(b *testing.B) {
	m := machine.SimDefault()
	var msgRatio, eGrowth float64
	for i := 0; i < b.N; i++ {
		x := fft.RandomSignal(1024, 3)
		naive, err := fft.Distributed(simCost(m), 16, x, false)
		if err != nil {
			b.Fatal(err)
		}
		tree, err := fft.Distributed(simCost(m), 16, x, true)
		if err != nil {
			b.Fatal(err)
		}
		msgRatio = naive.Sim.MaxStats().MsgsSent / tree.Sim.MaxStats().MsgsSent
		eGrowth = core.FFT(m, 1<<24, 4096, true).TotalEnergy() /
			core.FFT(m, 1<<24, 64, true).TotalEnergy()
	}
	b.ReportMetric(msgRatio, "naive-vs-tree-msgs")
	b.ReportMetric(eGrowth, "energy-growth-64-to-4096")
}

// BenchmarkTableTwoLevelModel (E16) regenerates the two-level model
// evaluations (Eqs. 12 and 17). Reported: the relative agreement between
// the printed Eq. 17 and its from-scratch derivation (must be ~0).
func BenchmarkTableTwoLevelModel(b *testing.B) {
	tl := machine.JaketownTwoLevel()
	tl.EpsilonE = 1e-3
	var gap float64
	for i := 0; i < b.N; i++ {
		mm := core.TwoLevelMatMul(tl, 8192, 4, 8)
		nb := core.TwoLevelNBody(tl, 1e6, 4, 8, 16)
		der := core.TwoLevelNBodyDerived(tl, 1e6, 4, 8, 16)
		gap = math.Abs(nb.Energy-der.Energy) / der.Energy
		_ = mm
	}
	b.ReportMetric(gap, "eq17-printed-vs-derived")
}

// BenchmarkTableSequentialBounds (E17) exercises the paper's sequential
// machine model (Figure 1(a), Eqs. 3–4): the blocked out-of-core matmul's
// measured transfer volume against the Hong–Kung lower bound, and the
// W(M/4)/W(M) = 2 doubling that defines the √M law.
func BenchmarkTableSequentialBounds(b *testing.B) {
	const n = 48
	var ratioToBound, doubling float64
	for i := 0; i < b.N; i++ {
		a := matrix.Random(n, n, 1)
		bb := matrix.Random(n, n, 2)
		words := map[int]float64{}
		for _, bs := range []int{4, 8} {
			mc, err := seq.New(3*bs*bs, 0)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := seq.BlockedMatMul(mc, a, bb, bs); err != nil {
				b.Fatal(err)
			}
			words[bs] = mc.Stats().Words
		}
		bound := bounds.SequentialWords(2*float64(n)*float64(n)*float64(n), 3*8*8, 3*float64(n*n))
		ratioToBound = words[8] / bound
		doubling = words[4] / words[8]
	}
	b.ReportMetric(ratioToBound, "measured-over-bound")
	b.ReportMetric(doubling, "W-doubling-per-M-quartering")
}

// BenchmarkTableBLAS2NoScaling (E18) exercises the paper's Section III
// remark that for matrix-vector (BLAS2) operations the input/output term
// dominates the communication bound: GEMV's measured per-rank words are
// I/O-sized, its bandwidth energy grows with √p, and the flop-vs-I/O
// headroom ratio is Θ(1) at any scale.
func BenchmarkTableBLAS2NoScaling(b *testing.B) {
	m := machine.SimDefault()
	var wordsOverIO, energyGrowth, headroom float64
	for i := 0; i < b.N; i++ {
		const n, q = 64, 4
		a := matrix.Random(n, n, 63)
		x := matrix.Random(n, 1, 64).Data
		res, err := matmul.Gemv(sim.Cost{}, q, a, x)
		if err != nil {
			b.Fatal(err)
		}
		wordsOverIO = res.Sim.MaxStats().WordsSent / float64(n/q)
		e1 := core.Eval(m, bounds.GEMV(1<<14, 16, m.MaxMsgWords), 16, 1<<24).Energy.Bandwidth
		e2 := core.Eval(m, bounds.GEMV(1<<14, 256, m.MaxMsgWords), 256, 1<<20).Energy.Bandwidth
		energyGrowth = e2 / e1
		headroom = bounds.GEMVNoScalingRatio(1e6, 1024)
	}
	b.ReportMetric(wordsOverIO, "words-over-io")
	b.ReportMetric(energyGrowth, "bandwidth-energy-growth-16x-p")
	b.ReportMetric(headroom, "flop-vs-io-headroom")
}

// BenchmarkTableCholesky (E19) verifies the Section III claim that the
// bounds "hold for ... Cholesky": the distributed factorization matches the
// serial one, costs about half of LU's flops, and shares LU's non-scaling
// latency critical path.
func BenchmarkTableCholesky(b *testing.B) {
	var flopRatio, latGrowth float64
	for i := 0; i < b.N; i++ {
		const n, q = 24, 4
		spd := matrix.RandomSPD(n, 5)
		chol, err := lu.Cholesky(sim.Cost{}, q, spd)
		if err != nil {
			b.Fatal(err)
		}
		dd := matrix.RandomDiagDominant(n, 5)
		lures, err := lu.TwoD(sim.Cost{}, q, dd)
		if err != nil {
			b.Fatal(err)
		}
		flopRatio = chol.Sim.TotalStats().Flops / lures.Sim.TotalStats().Flops
		lat2, err := lu.Cholesky(sim.Cost{AlphaT: 1}, 2, spd)
		if err != nil {
			b.Fatal(err)
		}
		lat4, err := lu.Cholesky(sim.Cost{AlphaT: 1}, 4, spd)
		if err != nil {
			b.Fatal(err)
		}
		latGrowth = lat4.Sim.Time() / lat2.Sim.Time()
	}
	b.ReportMetric(flopRatio, "cholesky-over-lu-flops")
	b.ReportMetric(latGrowth, "latency-growth-q2-to-q4")
}

// BenchmarkTableHeterogeneous (E20) exercises the heterogeneous extension
// the paper cites (Ballard–Demmel–Gearhart): equal-finish partitioning
// across Table II devices, the no-additional-energy tie for homogeneous
// twins, and the energy-optimal exclusion of a leaky straggler.
func BenchmarkTableHeterogeneous(b *testing.B) {
	devices := machine.TableIIDevices()
	var gpuShare, twinEnergyRatio float64
	var subsetSize int
	for i := 0; i < b.N; i++ {
		procs := []hetero.Proc{
			hetero.FromDevice(devices[8], 1e-10, 1e-7, 1e-10, 0, 1e-9, 0.1, 1<<30, 1<<20), // GTX590
			hetero.FromDevice(devices[0], 1e-10, 1e-7, 1e-10, 0, 1e-9, 0.1, 1<<30, 1<<20), // Sandy Bridge
			hetero.FromDevice(devices[9], 1e-10, 1e-7, 1e-10, 0, 1e-9, 0.1, 1<<30, 1<<20), // A9 2GHz
		}
		part, err := hetero.PartitionFlops(procs, 1e13)
		if err != nil {
			b.Fatal(err)
		}
		gpuShare = part.Shares[0] / 1e13

		twin := []hetero.Proc{procs[0], procs[0]}
		one, err := hetero.PartitionFlops(twin[:1], 1e13)
		if err != nil {
			b.Fatal(err)
		}
		two, err := hetero.PartitionFlops(twin, 1e13)
		if err != nil {
			b.Fatal(err)
		}
		twinEnergyRatio = two.Energy / one.Energy

		hog := procs[2]
		hog.EpsilonE = 1e4
		idx, _, err := hetero.BestSubset([]hetero.Proc{procs[0], procs[1], hog}, 1e13, 0)
		if err != nil {
			b.Fatal(err)
		}
		subsetSize = len(idx)
	}
	b.ReportMetric(gpuShare, "gpu-share")
	b.ReportMetric(twinEnergyRatio, "twin-energy-ratio")
	b.ReportMetric(float64(subsetSize), "subset-size-with-hog")
}
