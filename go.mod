module perfscale

go 1.22
