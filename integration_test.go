// Integration tests across modules: every multiplication algorithm agrees
// on the same product, simulator measurements track model predictions as p
// scales, the energy pricing of real runs reproduces the perfect-scaling
// story, and the two-level link model lines up with the two-level closed
// forms qualitatively.
package perfscale_test

import (
	"math"
	"testing"

	"perfscale/internal/bounds"
	"perfscale/internal/core"
	"perfscale/internal/lu"
	"perfscale/internal/machine"
	"perfscale/internal/matmul"
	"perfscale/internal/matrix"
	"perfscale/internal/nbody"
	"perfscale/internal/sim"
	"perfscale/internal/strassen"
)

// TestAllMultipliersAgree runs every matrix-multiplication implementation
// in the repository on the same operands and requires one answer.
func TestAllMultipliersAgree(t *testing.T) {
	const n = 112 // divisible by 4 (grids), 16, and the CAPS constraints
	a := matrix.Random(n, n, 100)
	b := matrix.Random(n, n, 200)
	want := matrix.Mul(a, b)

	check := func(name string, c *matrix.Dense, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d := c.MaxAbsDiff(want); d > 1e-9*n {
			t.Errorf("%s: max diff %g", name, d)
		}
	}

	cannon, err := matmul.Cannon(sim.Cost{}, 4, a, b)
	check("cannon", cannon.C, err)
	summa, err := matmul.SUMMA(sim.Cost{}, 4, a, b)
	check("summa", summa.C, err)
	td, err := matmul.TwoPointFiveD(sim.Cost{}, 4, 2, a, b)
	check("2.5D", td.C, err)
	threeD, err := matmul.ThreeD(sim.Cost{}, 4, a, b)
	check("3D", threeD.C, err)
	serialStrassen := strassen.Multiply(a, b, 16)
	check("serial strassen", serialStrassen, nil)
	caps, err := strassen.CAPS(sim.Cost{}, 1, a, b, 16)
	check("CAPS", caps.C, err)
	capsDFS, err := strassen.CAPSSchedule(sim.Cost{}, "DB", a, b, 16)
	check("CAPS DB", capsDFS.C, err)
}

// TestSimTracksModelScaling verifies that, as p grows with fixed problem
// and per-rank memory, the simulator's measured times fall in the same
// proportions as the model's predicted times (within a tolerance that
// absorbs the collectives' constant factors).
func TestSimTracksModelScaling(t *testing.T) {
	m := machine.Params{
		GammaT: 1e-9, BetaT: 4e-9, AlphaT: 1e-8,
		GammaE: 1e-9, BetaE: 4e-9, AlphaE: 0, DeltaE: 1e-10, EpsilonE: 0,
		MemWords: 1 << 30, MaxMsgWords: 1 << 24,
	}
	cost := sim.Cost{GammaT: m.GammaT, BetaT: m.BetaT, AlphaT: m.AlphaT}
	const n = 96
	a := matrix.Random(n, n, 1)
	b := matrix.Random(n, n, 2)

	type point struct{ simT, modelT float64 }
	var pts []point
	for _, c := range []int{1, 2, 4} {
		res, err := matmul.TwoPointFiveD(cost, 4, c, a, b)
		if err != nil {
			t.Fatal(err)
		}
		p := float64(16 * c)
		mem := res.Sim.MaxStats().PeakMemWords
		model := core.MatMulClassical(m, n, p, mem)
		pts = append(pts, point{res.Sim.Time(), model.TotalTime()})
	}
	for i := 1; i < len(pts); i++ {
		simRatio := pts[0].simT / pts[i].simT
		modelRatio := pts[0].modelT / pts[i].modelT
		if simRatio < 0.55*modelRatio || simRatio > 1.8*modelRatio {
			t.Errorf("scaling step %d: sim ratio %g vs model ratio %g", i, simRatio, modelRatio)
		}
	}
}

// TestMeasuredEnergyPlateau prices real 2.5D matmul runs with the paper's
// model: across c = 1, 2, 4 at fixed per-rank memory, the measured energy
// must stay within a tight band (the measured counterpart of "no
// additional energy") — even though p quadruples.
func TestMeasuredEnergyPlateau(t *testing.T) {
	m := machine.Params{
		GammaT: 1e-9, BetaT: 4e-9, AlphaT: 1e-8,
		GammaE: 1e-9, BetaE: 4e-9, AlphaE: 1e-8, DeltaE: 1e-11, EpsilonE: 1e-4,
		MemWords: 1 << 30, MaxMsgWords: 1 << 24,
	}
	cost := sim.Cost{GammaT: m.GammaT, BetaT: m.BetaT, AlphaT: m.AlphaT}
	const n = 192
	a := matrix.Random(n, n, 3)
	b := matrix.Random(n, n, 4)

	var energies []float64
	for _, c := range []int{1, 2, 4} {
		res, err := matmul.TwoPointFiveD(cost, 4, c, a, b)
		if err != nil {
			t.Fatal(err)
		}
		energies = append(energies, core.PriceSim(m, res.Sim).Total())
	}
	for i := 1; i < len(energies); i++ {
		ratio := energies[i] / energies[0]
		if ratio < 0.8 || ratio > 1.35 {
			t.Errorf("measured energy moved %.0f%% at step %d (plateau expected): %v",
				100*(ratio-1), i, energies)
		}
	}
}

// TestMeasuredNBodyEnergyPlateau is the n-body counterpart.
func TestMeasuredNBodyEnergyPlateau(t *testing.T) {
	m := machine.Params{
		GammaT: 1e-9, BetaT: 4e-9, AlphaT: 1e-8,
		GammaE: 1e-9, BetaE: 4e-9, AlphaE: 1e-8, DeltaE: 1e-11, EpsilonE: 1e-4,
		MemWords: 1 << 30, MaxMsgWords: 1 << 24,
	}
	cost := sim.Cost{GammaT: m.GammaT, BetaT: m.BetaT, AlphaT: m.AlphaT}
	bodies := nbody.RandomBodies(512, 7)

	var energies []float64
	for _, c := range []int{1, 2, 4} {
		res, err := nbody.Replicated(cost, 8*c, c, bodies)
		if err != nil {
			t.Fatal(err)
		}
		energies = append(energies, core.PriceSim(m, res.Sim).Total())
	}
	for i := 1; i < len(energies); i++ {
		ratio := energies[i] / energies[0]
		if ratio < 0.8 || ratio > 1.35 {
			t.Errorf("n-body measured energy moved %.0f%% at step %d: %v", 100*(ratio-1), i, energies)
		}
	}
}

// TestLUvsMatMulScalingContrast: the paper's Section IV contrast in one
// test. Replication buys 2.5D matmul bandwidth (a bandwidth-only clock
// improves with c), but it cannot buy LU latency (a latency-only clock
// does not improve — the q-step panel critical path remains).
func TestLUvsMatMulScalingContrast(t *testing.T) {
	const n = 64
	a := matrix.Random(n, n, 9)
	b := matrix.Random(n, n, 10)
	bw := sim.Cost{BetaT: 1}
	mm1, err := matmul.TwoPointFiveD(bw, 4, 1, a, b)
	if err != nil {
		t.Fatal(err)
	}
	mm4, err := matmul.TwoPointFiveD(bw, 4, 4, a, b)
	if err != nil {
		t.Fatal(err)
	}
	mmGain := mm1.Sim.Time() / mm4.Sim.Time()
	if mmGain <= 1.2 {
		t.Errorf("matmul bandwidth critical path should improve with c: gain %g", mmGain)
	}

	lat := sim.Cost{AlphaT: 1}
	ad := matrix.RandomDiagDominant(n, 11)
	lu1, err := lu.Stacked(lat, 4, 1, ad)
	if err != nil {
		t.Fatal(err)
	}
	lu4, err := lu.Stacked(lat, 4, 4, ad)
	if err != nil {
		t.Fatal(err)
	}
	luGain := lu1.Sim.Time() / lu4.Sim.Time()
	if luGain > 1.2 {
		t.Errorf("LU latency should not strong-scale with c: gain %g", luGain)
	}
}

// TestTwoLevelLinksMatchTwoLevelModelShape runs Cannon under two-level
// links with increasingly expensive inter-node transfers; simulated time
// must grow, and the two-level closed form must predict the same direction
// when its inter-node β grows.
func TestTwoLevelLinksMatchTwoLevelModelShape(t *testing.T) {
	const n, q = 64, 4
	a := matrix.Random(n, n, 13)
	b := matrix.Random(n, n, 14)
	run := func(interBeta float64) float64 {
		links := sim.TwoLevelLinks{
			CoresPerNode: 4,
			IntraAlpha:   1e-8, IntraBeta: 1e-9,
			InterAlpha: 1e-7, InterBeta: interBeta,
		}
		res, err := matmul.Cannon(sim.Cost{GammaT: 1e-9, Links: links}, q, a, b)
		if err != nil {
			t.Fatal(err)
		}
		return res.Sim.Time()
	}
	t1 := run(1e-9)
	t2 := run(16e-9)
	if t2 <= t1 {
		t.Errorf("slower inter-node links must slow the run: %g -> %g", t1, t2)
	}

	tl := machine.JaketownTwoLevel()
	m1 := core.TwoLevelMatMul(tl, 8192, 4, 4)
	tl.BetaTN *= 16
	m2 := core.TwoLevelMatMul(tl, 8192, 4, 4)
	if m2.Time <= m1.Time {
		t.Errorf("two-level model must agree in direction: %g -> %g", m1.Time, m2.Time)
	}
}

// TestBoundsNeverExceedMeasurement: the lower-bound expressions must not
// exceed (up to the model's dropped constants) the words actually moved by
// the implementations — i.e. the implementations cannot beat the bounds by
// more than the known constant factors.
func TestBoundsNeverExceedMeasurement(t *testing.T) {
	const n = 96
	a := matrix.Random(n, n, 15)
	b := matrix.Random(n, n, 16)
	for _, tc := range []struct{ q, c int }{{4, 1}, {4, 2}, {4, 4}} {
		res, err := matmul.TwoPointFiveD(sim.Cost{}, tc.q, tc.c, a, b)
		if err != nil {
			t.Fatal(err)
		}
		p := float64(tc.q * tc.q * tc.c)
		bound := bounds.MatMul25D(n, p, float64(tc.c)).Words
		measured := res.Sim.MaxStats().WordsSent
		if measured < bound/4 {
			t.Errorf("q=%d c=%d: measured words %g beat the bound %g by more than the dropped constants",
				tc.q, tc.c, measured, bound)
		}
	}
}

// TestEfficiencyMeasuredVsModel compares the measured GFLOPS/W of a real
// run against the model's prediction for the same configuration: they must
// agree within the constant factors the model drops.
func TestEfficiencyMeasuredVsModel(t *testing.T) {
	m := machine.SimDefault()
	cost := sim.Cost{GammaT: m.GammaT, BetaT: m.BetaT, AlphaT: m.AlphaT, MaxMsgWords: int(m.MaxMsgWords)}
	const n = 96
	a := matrix.Random(n, n, 17)
	b := matrix.Random(n, n, 18)
	res, err := matmul.TwoPointFiveD(cost, 4, 2, a, b)
	if err != nil {
		t.Fatal(err)
	}
	measured := core.SimEfficiency(m, res.Sim)
	mem := res.Sim.MaxStats().PeakMemWords
	model := core.MatMulClassical(m, n, 32, mem).GFLOPSPerWatt()
	ratio := measured / model
	if ratio < 0.2 || ratio > 5 {
		t.Errorf("measured efficiency %g vs model %g (ratio %g) outside constant-factor band",
			measured, model, ratio)
	}
	_ = math.Pi
}

// TestModelAccuracySweep is experiment E21: the Section VI intent of
// "evaluating accuracy" of the linear model, done against the simulator.
// Across a grid of (n, q, c) configurations, the ratio of simulated time to
// model time must stay within a narrow band — a drifting ratio would mean
// the linear model misses a trend, which is exactly what the paper claims
// it does not.
func TestModelAccuracySweep(t *testing.T) {
	m := machine.Params{
		GammaT: 1e-9, BetaT: 4e-9, AlphaT: 1e-8,
		GammaE: 1e-9, BetaE: 4e-9, AlphaE: 1e-8, DeltaE: 1e-11, EpsilonE: 1e-4,
		MemWords: 1 << 30, MaxMsgWords: 1 << 24,
	}
	cost := sim.Cost{GammaT: m.GammaT, BetaT: m.BetaT, AlphaT: m.AlphaT}
	var ratios []float64
	for _, n := range []int{48, 96, 192} {
		for _, cfg := range []struct{ q, c int }{{2, 1}, {4, 1}, {4, 2}, {4, 4}} {
			a := matrix.Random(n, n, int64(n))
			b := matrix.Random(n, n, int64(n)+1)
			res, err := matmul.TwoPointFiveD(cost, cfg.q, cfg.c, a, b)
			if err != nil {
				t.Fatal(err)
			}
			p := float64(cfg.q * cfg.q * cfg.c)
			mem := res.Sim.MaxStats().PeakMemWords
			model := core.MatMulClassical(m, float64(n), p, mem)
			ratios = append(ratios, res.Sim.Time()/model.TotalTime())
		}
	}
	lo, hi := ratios[0], ratios[0]
	for _, r := range ratios {
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	// The measured/model ratio must be a stable constant: spread under 3.5x
	// across a 16x range of p and a 4x range of n (the paper's own accuracy
	// bar is "capture general trends", not cycle accuracy).
	if hi/lo > 3.5 {
		t.Errorf("model/simulator ratio drifts: [%.2f, %.2f] (spread %.2fx)", lo, hi, hi/lo)
	}
	// And the model is never absurdly off.
	if lo < 0.3 || hi > 10 {
		t.Errorf("ratios out of sane band: [%.2f, %.2f]", lo, hi)
	}
}
