// Package perfscale reproduces "Perfect Strong Scaling Using No Additional
// Energy" (Demmel, Gearhart, Lipshitz, Schwartz — IPDPS 2013): energy and
// runtime models for communication-avoiding algorithms, the algorithms
// themselves running on a deterministic virtual-time message-passing
// simulator, and the paper's optimization and case-study experiments.
//
// The library lives under internal/:
//
//   - internal/machine    — machine parameter sets and presets (Tables I–II)
//   - internal/sim        — virtual-time distributed runtime and collectives
//   - internal/matrix     — dense local linear algebra kernels
//   - internal/bounds     — communication lower bounds (Eqs. 3–8, Fig. 3)
//   - internal/core       — the paper's T/E cost models (Eqs. 9–17)
//   - internal/opt        — Section V optimizers (M0, E*, budgets, co-design)
//   - internal/matmul     — Cannon, SUMMA, 3D and 2.5D matrix multiplication
//   - internal/strassen   — serial Strassen and CAPS-style parallel Strassen
//   - internal/lu         — blocked, 2D and 2.5D LU factorization
//   - internal/nbody      — direct n-body with data replication
//   - internal/fft        — serial and distributed cyclic-layout FFT
//   - internal/casestudy  — Section VI case study (Figs. 6–7, Tables I–II)
//   - internal/report     — tables, CSV and ASCII figure rendering
//
// Executables under cmd/ and runnable examples under examples/ exercise the
// API; bench_test.go regenerates every table and figure in the paper's
// evaluation. See DESIGN.md for the full inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package perfscale
