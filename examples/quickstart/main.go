// Quickstart: model a matrix multiplication on the paper's case-study
// machine, find its energy-optimal configuration, and confirm the headline
// result — inside the replication range, adding processors cuts runtime
// without costing a single extra joule.
package main

import (
	"fmt"

	"perfscale/internal/core"
	"perfscale/internal/machine"
	"perfscale/internal/opt"
)

func main() {
	// A machine: the dual-socket Sandy Bridge server of Section VI.
	m := machine.Jaketown()
	fmt.Println(m)

	// A problem: multiply two 16384x16384 matrices.
	const n = 16384

	// Question 1 of the paper: what memory per processor minimizes energy?
	pb := opt.MatMul{M: m, N: n}
	mem := pb.OptimalMemory()
	fmt.Printf("\nenergy-optimal memory per processor: %.3g words\n", mem)
	fmt.Printf("minimum energy: %.3g J\n", pb.MinEnergy())

	// The perfect-strong-scaling region for that memory.
	pmin, pmax := pb.PMin(mem), pb.PMax(mem)
	fmt.Printf("perfect strong scaling holds for p in [%.3g, %.3g]\n\n", pmin, pmax)

	// The headline: sweep p across the region at fixed memory. Runtime
	// falls as 1/p; energy does not move.
	fmt.Printf("%8s  %14s  %14s\n", "p", "time (s)", "energy (J)")
	for p := pmin; p <= pmax; p *= 2 {
		r := core.MatMulClassical(m, n, p, mem)
		fmt.Printf("%8.0f  %14.6g  %14.6g\n", p, r.TotalTime(), r.TotalEnergy())
	}
	fmt.Println("\nperfect strong scaling using no additional energy.")
}
