// ensemble applies the heterogeneous extension (the paper's citation [7])
// to the devices of Table II: partition one matrix multiplication's flops
// across a GPU, a server CPU and an embedded core so all three finish
// together, then ask which sub-ensemble actually minimizes energy.
package main

import (
	"fmt"
	"log"

	"perfscale/internal/hetero"
	"perfscale/internal/machine"
)

func main() {
	devices := map[string]machine.DeviceSpec{}
	for _, d := range machine.TableIIDevices() {
		devices[d.Name] = d
	}
	mk := func(name string, eps float64) hetero.Proc {
		return hetero.FromDevice(devices[name], 1e-10, 1e-7, 1e-10, 0, 1e-9, eps, 1<<30, 1<<20)
	}
	procs := []hetero.Proc{
		mk("Nvidia GTX590", 0.5),
		mk("Intel Sandy Bridge 2687W", 0.5),
		mk("ARM Cortex A9 (2.0GHz)", 0.5),
	}
	const work = 1e13 // one 17100^3-ish multiply

	part, err := hetero.PartitionFlops(procs, work)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("equal-finish partition of %.0g flops:\n", work)
	for i, p := range procs {
		fmt.Printf("  %-28s %6.2f%% of the work\n", p.Name, 100*part.Shares[i]/work)
	}
	fmt.Printf("makespan %.3f s, energy %.1f J\n\n", part.Time, part.Energy)

	idx, best, err := hetero.BestSubset(procs, work, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("energy-optimal sub-ensemble (no deadline): %d device(s), E = %.1f J\n", len(idx), best.Energy)
	for _, i := range idx {
		fmt.Printf("  keeps %s\n", procs[i].Name)
	}

	deadline := part.Time * 1.0005
	idx2, withDeadline, err := hetero.BestSubset(procs, work, deadline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nunder a deadline of %.3f s: %d device(s), E = %.1f J (%.1f%% more)\n",
		deadline, len(idx2), withDeadline.Energy, 100*(withDeadline.Energy/best.Energy-1))
	fmt.Println("\nheterogeneity keeps the theorem honest: speed is free only when the helpers are efficient.")
}
