// orbit is the n-body package as a mini-application: a leapfrog time
// integration of a small self-gravitating cluster whose forces are computed
// by the data-replicating distributed algorithm each step. It reports
// energy conservation (the integrator is symplectic) and what the paper's
// model says each force evaluation costs on the case-study machine.
package main

import (
	"fmt"
	"log"

	"perfscale/internal/core"
	"perfscale/internal/machine"
	"perfscale/internal/nbody"
	"perfscale/internal/sim"
)

func main() {
	const (
		n     = 128
		p     = 8
		c     = 2
		steps = 25
		dt    = 2e-3
	)
	m := machine.SimDefault()
	cost := sim.Cost{GammaT: m.GammaT, BetaT: m.BetaT, AlphaT: m.AlphaT, MaxMsgWords: int(m.MaxMsgWords)}

	// A cluster spread over a 10-unit box (well separated, smooth dynamics).
	bodies := nbody.RandomBodies(n, 2026)
	for i := 0; i < n; i++ {
		bodies[i*nbody.WordsPerBody] *= 10
		bodies[i*nbody.WordsPerBody+1] *= 10
		bodies[i*nbody.WordsPerBody+2] *= 10
	}
	st := nbody.NewState(bodies)
	e0 := st.Energy()

	res, err := nbody.Simulate(cost, p, c, st, steps, dt)
	if err != nil {
		log.Fatal(err)
	}
	e1 := res.Final.Energy()

	fmt.Printf("n-body mini-app: %d bodies, %d leapfrog steps of dt=%g on %d ranks (c=%d)\n\n", n, steps, dt, p, c)
	fmt.Printf("energy: %.6f -> %.6f (drift %.4f%%) — symplectic integration holds\n",
		e0, e1, 100*(e1-e0)/e0)
	fmt.Printf("force evaluations: %d, total simulated time %.3e s\n",
		len(res.Sims), res.TotalSimTime())

	one := res.Sims[0]
	s := one.MaxStats()
	fmt.Printf("per evaluation: %.0f flops, %.0f words, %.0f messages on the busiest rank\n\n",
		s.Flops, s.WordsSent, s.MsgsSent)

	// What the paper's model says about this workload per step.
	r := core.NBody(m, n, p, s.PeakMemWords/nbody.WordsPerBody, nbody.FlopsPerPair)
	fmt.Printf("model per evaluation on %s: T = %.3e s, E = %.3e J, %.2f GFLOPS/W\n",
		m.Name, r.TotalTime(), r.TotalEnergy(), r.GFLOPSPerWatt())
	fmt.Println("inside the replication range, stepping faster with more ranks costs no extra energy.")
}
