// matmul25d runs the 2.5D matrix-multiplication algorithm on the simulator
// across replication factors c = 1, 2, 4 — holding the problem size and
// per-rank memory fixed while the processor count grows — and shows the
// measured counterpart of the paper's perfect-strong-scaling claim: the
// simulated runtime drops by ≈c while the communication energy per rank
// does not grow.
package main

import (
	"fmt"
	"log"

	"perfscale/internal/bounds"
	"perfscale/internal/core"
	"perfscale/internal/machine"
	"perfscale/internal/matmul"
	"perfscale/internal/matrix"
	"perfscale/internal/sim"
)

func main() {
	m := machine.SimDefault()
	cost := sim.Cost{GammaT: m.GammaT, BetaT: m.BetaT, AlphaT: m.AlphaT, MaxMsgWords: int(m.MaxMsgWords)}

	const n, q = 192, 4
	a := matrix.Random(n, n, 1)
	b := matrix.Random(n, n, 2)
	want := matmul.Serial(a, b)

	fmt.Printf("2.5D matmul, n=%d, q=%d: p = 16c ranks, fixed per-rank memory\n\n", n, q)
	fmt.Printf("%3s %5s %12s %9s %12s %14s %12s\n",
		"c", "p", "sim time (s)", "speedup", "max W sent", "model E (J)", "numerics")

	var t1 float64
	for _, c := range []int{1, 2, 4} {
		res, err := matmul.TwoPointFiveD(cost, q, c, a, b)
		if err != nil {
			log.Fatal(err)
		}
		if d := res.C.MaxAbsDiff(want); d > 1e-9*n {
			log.Fatalf("c=%d: wrong product (diff %g)", c, d)
		}
		if c == 1 {
			t1 = res.Sim.Time()
		}
		p := float64(q * q * c)
		// Price the configuration with the paper's model: same n, same M,
		// growing p — the model says E is constant.
		stats := res.Sim.MaxStats()
		modelE := core.Eval(m, bounds.ClassicalMatMul(n, p, stats.PeakMemWords, m.MaxMsgWords),
			p, stats.PeakMemWords).TotalEnergy()
		fmt.Printf("%3d %5.0f %12.3e %8.2fx %12.0f %14.5g %12s\n",
			c, p, res.Sim.Time(), t1/res.Sim.Time(), stats.WordsSent, modelE, "ok")
	}
	fmt.Println("\nmodel energy is identical across rows; simulated time falls with c.")
}
