// nbody exercises the data-replicating direct n-body algorithm end to end:
// it verifies the distributed forces against the serial kernel, shows the
// measured strong-scaling behaviour as replication grows, and then uses the
// Section V machinery to answer the energy/time tradeoff questions for the
// same workload on the paper's illustrative machine.
package main

import (
	"fmt"
	"log"

	"perfscale/internal/machine"
	"perfscale/internal/nbody"
	"perfscale/internal/opt"
	"perfscale/internal/sim"
)

func main() {
	// Part 1: run the real algorithm on the simulator.
	m := machine.SimDefault()
	cost := sim.Cost{GammaT: m.GammaT, BetaT: m.BetaT, AlphaT: m.AlphaT, MaxMsgWords: int(m.MaxMsgWords)}
	const n = 512
	bodies := nbody.RandomBodies(n, 42)
	want := nbody.SerialForces(bodies)

	fmt.Printf("replicated n-body, n=%d bodies, ring size k=8 fixed, p = 8c\n\n", n)
	fmt.Printf("%3s %4s %12s %9s %12s %12s\n", "c", "p", "sim time (s)", "speedup", "max W sent", "peak M")
	var t1 float64
	for _, c := range []int{1, 2, 4} {
		res, err := nbody.Replicated(cost, 8*c, c, bodies)
		if err != nil {
			log.Fatal(err)
		}
		if d := nbody.MaxAbsDiff(res.Forces, want); d > 1e-9 {
			log.Fatalf("c=%d: wrong forces (diff %g)", c, d)
		}
		if c == 1 {
			t1 = res.Sim.Time()
		}
		s := res.Sim.MaxStats()
		fmt.Printf("%3d %4d %12.3e %8.2fx %12.0f %12.0f\n",
			c, 8*c, res.Sim.Time(), t1/res.Sim.Time(), s.WordsSent, s.PeakMemWords)
	}

	// Part 2: the Section V questions on the paper's illustrative machine.
	pb := opt.NBody{M: machine.Illustrative(), N: machine.IllustrativeN, F: nbody.FlopsPerPair}
	m0 := pb.OptimalMemory()
	lo, hi := pb.MinEnergyProcRange()
	fmt.Printf("\nSection V on the illustrative machine (n=%.0f):\n", pb.N)
	fmt.Printf("  M0 = %.4g words, E* = %.4g J, attainable for p in [%.3g, %.3g]\n",
		m0, pb.MinEnergy(), lo, hi)

	// With far more processors than the min-energy range allows, the
	// fastest run must shrink memory below M0 and pay for it in energy.
	fast := pb.MinTimeConfig(1000)
	fmt.Printf("  fastest run (p=%.3g, 2D limit): T = %.4g s but E = %.4g J (%.1f%% above E*)\n",
		fast.P, pb.Time(fast.P, fast.Mem), pb.Energy(fast.Mem),
		100*(pb.Energy(fast.Mem)/pb.MinEnergy()-1))

	budget := pb.Energy(m0) * 1.25
	cfg, tt, err := pb.MinTimeGivenEnergy(budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  fastest run within 1.25·E*: p = %.4g, M = %.4g, T = %.4g s\n", cfg.P, cfg.Mem, tt)
	fmt.Println("\n\"race to halt\" is not the energy-optimal policy in this model.")
}
