// Tracequickstart: observe a simulated run instead of just measuring it.
// A 2.5D matmul runs with an event-bus Collector subscribed; the obs
// summary then splits the run's Eq. 2 energy into the paper's five terms
// — γe·F, βe·W, αe·S, δe·M·T, εe·T — and the split is verified to sum,
// bit for bit, to the same energy an untraced run is priced at. The same
// collector also feeds the Chrome/Perfetto exporter; see cmd/trace for
// the full CLI.
package main

import (
	"fmt"
	"strings"

	"perfscale/internal/core"
	"perfscale/internal/machine"
	"perfscale/internal/matmul"
	"perfscale/internal/matrix"
	"perfscale/internal/obs"
	"perfscale/internal/sim"
)

// report runs the traced point and renders the attribution check; main and
// the Example test share it.
func report() string {
	m := machine.SimDefault()
	const q, c, n = 4, 2, 32 // p = q²·c = 32 ranks
	cost := sim.Cost{GammaT: m.GammaT, BetaT: m.BetaT, AlphaT: m.AlphaT,
		MaxMsgWords: int(m.MaxMsgWords), Trace: true}
	col := obs.NewCollector(q * q * c)
	cost.Observers = []sim.Observer{col}

	a := matrix.Random(n, n, 1)
	b := matrix.Random(n, n, 2)
	run, err := matmul.TwoPointFiveD(cost, q, c, a, b)
	if err != nil {
		panic(err)
	}

	s := obs.NewSummary(m, run.Sim, col)
	var out strings.Builder
	fmt.Fprintf(&out, "2.5D matmul, p=%d, traced through the event bus\n", s.P)
	fmt.Fprintf(&out, "energy split (Eq. 2):\n")
	fmt.Fprintf(&out, "  compute   γe·F    %.6g J\n", s.Total.Compute)
	fmt.Fprintf(&out, "  bandwidth βe·W    %.6g J\n", s.Total.Bandwidth)
	fmt.Fprintf(&out, "  latency   αe·S    %.6g J\n", s.Total.Latency)
	fmt.Fprintf(&out, "  memory    δe·M·T  %.6g J\n", s.Total.Memory)
	fmt.Fprintf(&out, "  leakage   εe·T    %.6g J\n", s.Total.Leakage)
	fmt.Fprintf(&out, "  total             %.6g J\n", s.Total.Total())

	// The observability layer must never perturb the physics: the split
	// sums bit-identically to pricing the run's Result the untraced way.
	want := core.PriceSim(m, run.Sim)
	fmt.Fprintf(&out, "split sums to the Result's priced energy: %v\n", s.Total == want && s.Total.Total() == want.Total())
	return out.String()
}

func main() {
	fmt.Print(report())
}
