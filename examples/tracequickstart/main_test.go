package main

import "fmt"

// The example's output is deterministic: virtual time and every counter
// derive only from Cost parameters and payload sizes, so the energy split
// — and its bit-identity with the untraced pricing — is stable.
func Example_report() {
	fmt.Print(report())
	// Output:
	// 2.5D matmul, p=32, traced through the event bus
	// energy split (Eq. 2):
	//   compute   γe·F    6.656e-05 J
	//   bandwidth βe·W    5.1328e-05 J
	//   latency   αe·S    0.000304 J
	//   memory    δe·M·T  9.75667e-12 J
	//   leakage   εe·T    5.0816e-06 J
	//   total             0.00042697 J
	// split sums to the Result's priced energy: true
}
