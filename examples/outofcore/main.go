// outofcore demonstrates the paper's sequential machine model (Figure
// 1(a)): a processor with M words of fast memory in front of slow memory.
// It runs the same matrix multiplication with a cache-aware blocked
// algorithm at several fast-memory sizes and with no blocking at all,
// showing the Hong–Kung √M law of Eq. 3 — and what ignoring it costs.
package main

import (
	"fmt"
	"log"

	"perfscale/internal/bounds"
	"perfscale/internal/matrix"
	"perfscale/internal/seq"
)

func main() {
	const n = 48
	a := matrix.Random(n, n, 1)
	b := matrix.Random(n, n, 2)
	want := matrix.Mul(a, b)
	flops := 2.0 * n * n * n
	io := 3.0 * n * n

	fmt.Printf("out-of-core matmul, n=%d (F = %.0f flops, inputs+outputs = %.0f words)\n\n", n, flops, io)
	fmt.Printf("%10s %10s %12s %14s %10s\n", "fast mem", "block", "W measured", "Eq.3 bound", "ratio")
	for _, bs := range []int{4, 8, 16} {
		mc, err := seq.New(3*bs*bs, 0)
		if err != nil {
			log.Fatal(err)
		}
		c, err := seq.BlockedMatMul(mc, a, b, bs)
		if err != nil {
			log.Fatal(err)
		}
		if d := c.MaxAbsDiff(want); d > 1e-9*n {
			log.Fatalf("bs=%d: wrong product (%g)", bs, d)
		}
		s := mc.Stats()
		bound := bounds.SequentialWords(flops, float64(3*bs*bs), io)
		fmt.Printf("%10d %10d %12.0f %14.0f %9.2fx\n", 3*bs*bs, bs, s.Words, bound, s.Words/bound)
	}

	// The unblocked strawman.
	mc, err := seq.New(1024, 0)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := seq.NaiveMatMul(mc, a, b); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nunblocked: W = %.0f words — %.0fx the bound at the same memory;\n",
		mc.Stats().Words, mc.Stats().Words/bounds.SequentialWords(flops, 1024, io))
	fmt.Println("blocking to fill fast memory is where communication-avoidance starts.")
}
