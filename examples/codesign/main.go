// codesign walks question 5 of the paper's introduction (Section V.F):
// given a target energy efficiency in GFLOPS/W, what must the machine's
// energy parameters become? It starts from the measured Table I server,
// reports the achievable n-body efficiency, and solves for the technology
// scaling that reaches the target — the paper's hardware/software co-design
// loop.
package main

import (
	"fmt"
	"math"

	"perfscale/internal/casestudy"
	"perfscale/internal/machine"
	"perfscale/internal/opt"
)

func main() {
	base := machine.Jaketown()
	pb := opt.NBody{M: base, N: 1e6, F: 19}

	fmt.Println("co-design study on the Table I machine")
	fmt.Printf("best-case n-body efficiency today: %.3f GFLOPS/W (independent of n, p, M)\n\n",
		pb.Efficiency())

	fmt.Printf("%10s %14s %16s\n", "target", "energy scale", "generations")
	for _, target := range []float64{5, 10, 25, 75, 200} {
		x := pb.EnergyScaleForTarget(target)
		gens := math.Ceil(math.Log2(1 / x))
		fmt.Printf("%7.0f GF/W %13.4g %16.0f\n", target, x, gens)
	}

	// Cross-check with the Section VI matmul trajectory: the joint
	// γe/βe/δe halving path reaches 75 GFLOPS/W at generation...
	g := casestudy.GenerationsToTarget(75, 12)
	fmt.Printf("\nSection VI matmul trajectory reaches 75 GFLOPS/W at generation %d (paper: ~5)\n", g)

	// Verify the solve: apply the scale for 75 GFLOPS/W and re-evaluate.
	x := pb.EnergyScaleForTarget(75)
	scaled := pb
	scaled.M = base.ScaleEnergy(x,
		machine.FieldGammaE, machine.FieldBetaE, machine.FieldAlphaE,
		machine.FieldDeltaE, machine.FieldEpsilonE)
	fmt.Printf("after scaling all energy parameters by %.4g: %.2f GFLOPS/W\n",
		x, scaled.Efficiency())
}
